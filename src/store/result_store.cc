#include "store/result_store.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "sim/logging.hh"

namespace odrips::store
{

namespace
{

std::string
segmentName(std::uint64_t number)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "seg-%08llu.odst",
                  static_cast<unsigned long long>(number));
    return buf;
}

/** Parse "seg-<n>.odst" -> n, or 0 when the name doesn't match. */
std::uint64_t
segmentNumber(const std::string &name)
{
    if (name.size() < 10 || name.compare(0, 4, "seg-") != 0)
        return 0;
    if (name.compare(name.size() - 5, 5, ".odst") != 0)
        return 0;
    std::uint64_t n = 0;
    for (std::size_t i = 4; i < name.size() - 5; ++i) {
        const char c = name[i];
        if (c < '0' || c > '9')
            return 0;
        n = n * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return n;
}

std::uint64_t
readLe(const std::uint8_t *p, int bytes)
{
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

/** One mapped, immutable segment file. */
struct ResultStore::Segment
{
    std::string name;
    std::uint64_t number = 0;
    const std::uint8_t *data = nullptr;
    std::size_t size = 0;
    void *mapping = nullptr;           ///< munmap() target (may be null)
    std::vector<std::uint8_t> fallback; ///< used when mmap() fails

    ~Segment()
    {
        if (mapping != nullptr)
            ::munmap(mapping, size);
    }
};

ResultStore::ResultStore(const std::string &dir, Mode mode,
                         std::uint64_t physics_tag)
    : dir_(dir), mode_(mode), physicsTag_(physics_tag)
{
    struct stat st{};
    const bool exists =
        ::stat(dir_.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
    if (!exists) {
        if (mode_ == Mode::ReadOnly)
            throw StoreError("result store directory does not exist: " +
                             dir_);
        if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST)
            throw StoreError("cannot create result store directory " +
                             dir_ + ": " + std::strerror(errno));
    }

    if (mode_ == Mode::ReadWrite) {
        const std::string lock_path = dir_ + "/LOCK";
        lockFd_ = ::open(lock_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC,
                         0644);
        if (lockFd_ < 0)
            throw StoreError("cannot open store lock file " + lock_path +
                             ": " + std::strerror(errno));
        if (::flock(lockFd_, LOCK_EX | LOCK_NB) == 0) {
            writable_ = true;
        } else {
            // Another writer holds the store: degrade to read-only
            // rather than failing — callers simply lose write-back.
            ::close(lockFd_);
            lockFd_ = -1;
            warn("result store ", dir_,
                 " is locked by another writer; continuing read-only");
        }
    }

    std::lock_guard<std::mutex> guard(mtx_);
    loadSegmentsLocked();
}

ResultStore::~ResultStore()
{
    try {
        flush();
    } catch (const std::exception &) {
        // Destructor flush is best-effort; pending entries are a pure
        // cache, losing them costs recomputation only.
    }
    if (lockFd_ >= 0)
        ::close(lockFd_); // releases the flock
}

void
ResultStore::loadSegmentsLocked()
{
    std::vector<std::string> names;
    DIR *d = ::opendir(dir_.c_str());
    if (d == nullptr)
        throw StoreError("cannot open result store directory " + dir_ +
                         ": " + std::strerror(errno));
    while (const dirent *ent = ::readdir(d)) {
        const std::string name = ent->d_name;
        if (segmentNumber(name) != 0)
            names.push_back(name);
    }
    ::closedir(d);

    // Number order == creation order; later segments override earlier
    // entries for the same key.
    std::sort(names.begin(), names.end(),
              [](const std::string &a, const std::string &b) {
                  return segmentNumber(a) < segmentNumber(b);
              });

    for (const std::string &name : names) {
        const std::uint64_t number = segmentNumber(name);
        nextSegmentNumber_ = std::max(nextSegmentNumber_, number + 1);
        const bool already = std::any_of(
            segments_.begin(), segments_.end(),
            [&](const auto &s) { return s->number == number; });
        if (already)
            continue;

        const std::string path = dir_ + "/" + name;
        const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
        if (fd < 0) {
            ++counters_.segmentsBad;
            continue;
        }
        struct stat st{};
        if (::fstat(fd, &st) != 0 || st.st_size < 0) {
            ::close(fd);
            ++counters_.segmentsBad;
            continue;
        }

        auto seg = std::make_unique<Segment>();
        seg->name = name;
        seg->number = number;
        seg->size = static_cast<std::size_t>(st.st_size);
        if (seg->size > 0) {
            void *map = ::mmap(nullptr, seg->size, PROT_READ, MAP_SHARED,
                               fd, 0);
            if (map != MAP_FAILED) {
                seg->mapping = map;
                seg->data = static_cast<const std::uint8_t *>(map);
            } else {
                // Filesystems without mmap still get a working (if
                // slower) read path.
                seg->fallback.resize(seg->size);
                std::size_t got = 0;
                while (got < seg->size) {
                    const ssize_t n =
                        ::pread(fd, seg->fallback.data() + got,
                                seg->size - got,
                                static_cast<off_t>(got));
                    if (n <= 0)
                        break;
                    got += static_cast<std::size_t>(n);
                }
                if (got != seg->size) {
                    ::close(fd);
                    ++counters_.segmentsBad;
                    continue;
                }
                seg->data = seg->fallback.data();
            }
        }
        ::close(fd);

        segments_.push_back(std::move(seg));
        if (!indexSegmentLocked(segments_.size() - 1))
            segments_.pop_back();
    }
}

bool
ResultStore::indexSegmentLocked(std::size_t segment_idx)
{
    const Segment &seg = *segments_[segment_idx];
    // Header: magic, format, physics tag, entry count.
    if (seg.size < 20) {
        ++counters_.segmentsBad;
        return false;
    }
    const std::uint8_t *p = seg.data;
    if (readLe(p, 4) != magic || readLe(p + 4, 4) != formatVersion) {
        ++counters_.segmentsBad;
        return false;
    }
    const std::uint64_t tag = readLe(p + 8, 8);
    const std::uint64_t count = readLe(p + 16, 4);
    if (tag != physicsTag_) {
        // A physics change orphans old results wholesale; they stay on
        // disk (an older binary can still read them) but are invisible
        // here.
        ++counters_.segmentsStalePhysics;
        return false;
    }

    ++counters_.segmentsLoaded;
    std::size_t off = 20;
    for (std::uint64_t i = 0; i < count; ++i) {
        // Entry header: key.lo, key.hi, size, crc.
        if (off + 24 > seg.size) {
            counters_.entriesTorn += count - i;
            break;
        }
        ProfileKey key;
        key.lo = readLe(seg.data + off, 8);
        key.hi = readLe(seg.data + off + 8, 8);
        const std::uint64_t payload_size = readLe(seg.data + off + 16, 4);
        const std::uint32_t stored_crc =
            static_cast<std::uint32_t>(readLe(seg.data + off + 20, 4));
        off += 24;
        if (off + payload_size > seg.size) {
            counters_.entriesTorn += count - i;
            break;
        }
        const std::uint32_t actual_crc =
            ckpt::crc32(seg.data + off, payload_size);
        if (actual_crc != stored_crc) {
            // Pinned to this entry: framing is intact, keep scanning.
            ++counters_.entriesCorrupt;
        } else {
            index_[key] = Location{segment_idx, off,
                                   static_cast<std::size_t>(payload_size),
                                   0};
        }
        off += payload_size;
    }
    return true;
}

std::optional<StoredResult>
ResultStore::decodeAtLocked(const Location &loc)
{
    const std::uint8_t *payload =
        loc.segment == npos
            ? pending_[loc.pending].second.data()
            : segments_[loc.segment]->data + loc.offset;
    const std::size_t size = loc.segment == npos
                                 ? pending_[loc.pending].second.size()
                                 : loc.size;
    try {
        return decodeResult(payload, size);
    } catch (const ckpt::SnapshotError &) {
        // CRC passed but the payload does not parse (e.g. written by a
        // future schema with an unchanged physics tag — impossible
        // today, defensive anyway): recompute instead of serving junk.
        ++counters_.decodeFailures;
        return std::nullopt;
    }
}

std::optional<StoredResult>
ResultStore::lookup(const ProfileKey &key)
{
    std::lock_guard<std::mutex> guard(mtx_);
    ++counters_.lookups;
    const auto it = index_.find(key);
    if (it == index_.end()) {
        ++counters_.misses;
        return std::nullopt;
    }
    std::optional<StoredResult> result = decodeAtLocked(it->second);
    if (result)
        ++counters_.hits;
    else
        ++counters_.misses;
    return result;
}

void
ResultStore::insert(const ProfileKey &key, const StoredResult &result)
{
    std::lock_guard<std::mutex> guard(mtx_);
    if (!writable_)
        return;
    ckpt::Writer w;
    encodeResult(w, result);
    pending_.emplace_back(key, w.take());
    index_[key] = Location{npos, 0, 0, pending_.size() - 1};
    ++counters_.inserts;
    if (pending_.size() >= flushThreshold)
        flushLocked();
}

void
ResultStore::flush()
{
    std::lock_guard<std::mutex> guard(mtx_);
    flushLocked();
}

void
ResultStore::flushLocked()
{
    if (pending_.empty() || !writable_)
        return;

    ckpt::Writer w;
    w.u32(magic);
    w.u32(formatVersion);
    w.u64(physicsTag_);
    w.u32(static_cast<std::uint32_t>(pending_.size()));
    for (const auto &[key, payload] : pending_) {
        w.u64(key.lo);
        w.u64(key.hi);
        w.u32(static_cast<std::uint32_t>(payload.size()));
        w.u32(ckpt::crc32(payload.data(), payload.size()));
        w.bytes(payload.data(), payload.size());
    }
    const std::vector<std::uint8_t> &buf = w.data();

    const std::string name = segmentName(nextSegmentNumber_);
    const std::string path = dir_ + "/" + name;
    const std::string tmp = path + ".tmp";

    // Complete segment to a temp file, fsync, then an atomic rename:
    // a crash at any point leaves either no segment or a whole one.
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0)
        throw StoreError("cannot create store segment " + tmp + ": " +
                         std::strerror(errno));
    std::size_t written = 0;
    while (written < buf.size()) {
        const ssize_t n =
            ::write(fd, buf.data() + written, buf.size() - written);
        if (n <= 0) {
            ::close(fd);
            ::unlink(tmp.c_str());
            throw StoreError("short write to store segment " + tmp);
        }
        written += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0 || ::close(fd) != 0) {
        ::unlink(tmp.c_str());
        throw StoreError("cannot sync store segment " + tmp);
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        throw StoreError("cannot publish store segment " + path + ": " +
                         std::strerror(errno));
    }

    ++nextSegmentNumber_;
    ++counters_.flushes;

    // Re-point the index at the sealed segment (self-read path).
    auto seg = std::make_unique<Segment>();
    seg->name = name;
    seg->number = segmentNumber(name);
    seg->fallback = buf;
    seg->size = seg->fallback.size();
    seg->data = seg->fallback.data();
    segments_.push_back(std::move(seg));

    const std::size_t seg_idx = segments_.size() - 1;
    std::size_t off = 20;
    for (const auto &[key, payload] : pending_) {
        index_[key] = Location{seg_idx, off + 24, payload.size(), 0};
        off += 24 + payload.size();
    }
    pending_.clear();
}

void
ResultStore::refresh()
{
    std::lock_guard<std::mutex> guard(mtx_);
    loadSegmentsLocked();
}

bool
ResultStore::writable() const
{
    return writable_;
}

std::size_t
ResultStore::entryCount() const
{
    std::lock_guard<std::mutex> guard(mtx_);
    return index_.size();
}

std::size_t
ResultStore::segmentCount() const
{
    std::lock_guard<std::mutex> guard(mtx_);
    return segments_.size();
}

StoreCounters
ResultStore::counters() const
{
    std::lock_guard<std::mutex> guard(mtx_);
    return counters_;
}

} // namespace odrips::store
