/**
 * @file
 * Persistent, versioned, append-only result store.
 *
 * A store is a directory of immutable segment files:
 *
 *     <dir>/seg-00000001.odst
 *     <dir>/seg-00000002.odst
 *     <dir>/LOCK
 *
 * Each segment holds a batch of (ProfileKey -> StoredResult) entries
 * behind a fixed header:
 *
 *     u32 magic   'ODST' (0x5453444f little-endian on disk)
 *     u32 format  segment format version (currently 1)
 *     u64 physics physicsVersion() of the writer (result_schema.hh)
 *     u32 count   number of entries
 *     then per entry:
 *         u64 key.lo     128-bit ProfileKey content hash
 *         u64 key.hi
 *         u32 size       payload byte count
 *         u32 crc32      CRC-32 of the payload
 *         payload        StoredResult encoding (result_schema.hh)
 *
 * Durability and concurrency:
 *  - Writes are crash-safe: flush() assembles a complete segment in
 *    memory, writes it to a temp file, fsyncs, and renames it into
 *    place — readers can never observe a half-written segment under
 *    its final name.
 *  - Segments are append-only at the directory level: once renamed in,
 *    a segment is never modified, so they are mmap()ed read-only and
 *    shared freely across processes. refresh() picks up segments that
 *    other processes sealed after open().
 *  - A single writer is enforced with an advisory flock() on <dir>/LOCK
 *    (released automatically if the writer dies). A second ReadWrite
 *    open does not fail: it degrades to read-only and counts the
 *    degradation, so "try to write back, else just read" needs no
 *    caller-side coordination.
 *  - Corruption is contained: a segment with a bad magic/format is
 *    skipped whole, a stale physics tag invalidates the whole segment,
 *    a torn entry ends the scan of its segment, and a payload whose
 *    CRC-32 does not match is skipped individually. Every fallback is
 *    counted and every surviving entry is exact — a damaged store can
 *    cost recomputation, never a wrong answer.
 *
 * The in-memory index (key -> location) is built by one O(entries)
 * walk per segment at open()/refresh(); lookups then decode straight
 * out of the mapped segment at microsecond latency. Duplicate keys
 * resolve to the newest segment (last writer wins).
 */

#ifndef ODRIPS_STORE_RESULT_STORE_HH
#define ODRIPS_STORE_RESULT_STORE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/profile_cache.hh"
#include "store/result_schema.hh"

namespace odrips::store
{

/** Raised on unrecoverable store problems (unwritable directory...).
 * Recoverable damage (bad CRC, stale physics) never throws — it is
 * counted and treated as a miss. */
class StoreError : public std::runtime_error
{
  public:
    explicit StoreError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Monotonic per-store counters (all values since open()). */
struct StoreCounters
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t flushes = 0;
    std::uint64_t segmentsLoaded = 0;
    /** Segments skipped whole: stale physics tag. */
    std::uint64_t segmentsStalePhysics = 0;
    /** Segments skipped whole: bad magic / format / header. */
    std::uint64_t segmentsBad = 0;
    /** Entries whose payload failed its CRC-32 (skipped). */
    std::uint64_t entriesCorrupt = 0;
    /** Entries lost to a torn/truncated segment tail. */
    std::uint64_t entriesTorn = 0;
    /** Mapped entries whose payload failed to decode on lookup. */
    std::uint64_t decodeFailures = 0;

    double
    hitRate() const
    {
        return lookups > 0
                   ? static_cast<double>(hits) /
                         static_cast<double>(lookups)
                   : 0.0;
    }
};

/** A persistent memo of measureCycleProfile results. Thread-safe. */
class ResultStore
{
  public:
    static constexpr std::uint32_t magic = 0x5453444fu; // "ODST"
    static constexpr std::uint32_t formatVersion = 1;

    enum class Mode
    {
        ReadOnly,  ///< never writes; directory must exist
        ReadWrite, ///< creates the directory, takes the writer lock
    };

    /**
     * Open (and in ReadWrite mode create) the store at @p dir, loading
     * the index of every valid segment. @p physics_tag entries are the
     * only ones served; segments with any other tag are skipped whole
     * (the self-invalidation path after a physics change).
     */
    ResultStore(const std::string &dir, Mode mode,
                std::uint64_t physics_tag = physicsVersion());

    /** Flushes pending entries (best effort), unmaps, unlocks. */
    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /** Serve @p key from the store (mapped segments or pending batch). */
    std::optional<StoredResult> lookup(const ProfileKey &key);

    /**
     * Buffer (@p key -> @p result) for the next flush(). Pending
     * entries are visible to lookup() immediately; they reach disk at
     * flush() (automatic every @c flushThreshold inserts and at
     * destruction). No-op (counted) when the store is not writable.
     */
    void insert(const ProfileKey &key, const StoredResult &result);

    /**
     * Seal every pending entry into a new segment file (temp-file +
     * rename). No-op when nothing is pending.
     */
    void flush();

    /** Re-scan the directory for segments sealed by other processes. */
    void refresh();

    /**
     * Whether insert() can reach disk: ReadWrite mode and the writer
     * lock was won. False after degrading to read-only because another
     * process holds the lock.
     */
    bool writable() const;

    /** Number of distinct keys currently servable. */
    std::size_t entryCount() const;

    /** Number of mapped (sealed) segments. */
    std::size_t segmentCount() const;

    StoreCounters counters() const;

    const std::string &directory() const { return dir_; }

    /** Pending inserts that trigger an automatic flush(). */
    static constexpr std::size_t flushThreshold = 64;

  private:
    struct Segment;
    struct Location
    {
        // Indices rather than pointers: pending entries move on flush.
        std::size_t segment;      ///< index into segments_,
                                  ///  or npos for a pending entry
        std::size_t offset = 0;   ///< payload offset inside the segment
        std::size_t size = 0;     ///< payload byte count
        std::size_t pending = 0;  ///< index into pending_ when npos
    };
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    void loadSegmentsLocked();
    bool indexSegmentLocked(std::size_t segment_idx);
    void flushLocked();
    std::optional<StoredResult> decodeAtLocked(const Location &loc);

    std::string dir_;
    Mode mode_;
    std::uint64_t physicsTag_;
    int lockFd_ = -1;
    bool writable_ = false;

    mutable std::mutex mtx_;
    std::vector<std::unique_ptr<Segment>> segments_;
    std::map<ProfileKey, Location> index_;
    std::vector<std::pair<ProfileKey, std::vector<std::uint8_t>>>
        pending_;
    std::uint64_t nextSegmentNumber_ = 1;
    StoreCounters counters_;
};

} // namespace odrips::store

#endif // ODRIPS_STORE_RESULT_STORE_HH
