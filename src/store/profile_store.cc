#include "store/profile_store.hh"

#include <cstdlib>
#include <exception>
#include <ostream>

#include "sim/logging.hh"
#include "stats/report.hh"

namespace odrips::store
{

bool
StoreProfileBackend::fetch(const ProfileKey &key, CyclePowerProfile &out)
{
    const std::optional<StoredResult> hit = store_.lookup(key);
    if (!hit)
        return false;
    out = hit->profile;
    return true;
}

void
StoreProfileBackend::persist(const ProfileKey &key,
                             const PlatformConfig &cfg,
                             const TechniqueSet &techniques,
                             const CyclePowerProfile &profile)
{
    (void)techniques;
    store_.insert(key, makeStoredResult(profile, cfg));
}

void
StoreProfileBackend::reportTo(std::ostream &os)
{
    const StoreCounters c = store_.counters();
    os << "result store (" << store_.directory() << "): " << c.hits
       << " hits / " << c.lookups << " lookups ("
       << stats::fmtPercent(c.hitRate()) << "), " << c.inserts
       << " inserts, " << store_.segmentCount() << " segments, "
       << store_.entryCount() << " entries";
    if (!store_.writable())
        os << " [read-only]";
    os << '\n';
    const std::uint64_t damaged = c.segmentsBad +
                                  c.segmentsStalePhysics +
                                  c.entriesCorrupt + c.entriesTorn +
                                  c.decodeFailures;
    if (damaged != 0) {
        os << "result store damage: " << c.segmentsBad
           << " bad segments, " << c.segmentsStalePhysics
           << " stale-physics segments, " << c.entriesCorrupt
           << " corrupt entries, " << c.entriesTorn
           << " torn entries, " << c.decodeFailures
           << " decode failures (all recomputed)\n";
    }
}

AttachedStore::AttachedStore(const std::string &dir,
                             ResultStore::Mode mode)
    : store_(dir, mode), backend_(store_)
{
    CycleProfileCache::global().setBackend(&backend_);
}

AttachedStore::~AttachedStore()
{
    CycleProfileCache::global().setBackend(nullptr);
}

std::unique_ptr<AttachedStore>
attachGlobalStoreFromEnv()
{
    const char *dir = std::getenv("ODRIPS_STORE");
    if (dir == nullptr || dir[0] == '\0')
        return nullptr;
    try {
        return std::make_unique<AttachedStore>(
            dir, ResultStore::Mode::ReadWrite);
    } catch (const std::exception &e) {
        warn("ignoring ODRIPS_STORE=", dir, ": ", e.what());
        return nullptr;
    }
}

} // namespace odrips::store
