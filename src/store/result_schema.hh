/**
 * @file
 * Stable serialized result schema for memoized cycle-profile results.
 *
 * The persistent result store (result_store.hh) memoises
 * measureCycleProfile() across *processes*; this header defines what a
 * stored result looks like on disk: the full CyclePowerProfile plus the
 * derived per-key statistics every consumer recomputes today
 * (Eq. 1 average power at the key's own workload point and the
 * transition-overhead energy). All values are encoded through the
 * bounds-checked ckpt::Writer/Reader primitives, so doubles round-trip
 * bit-exactly and a truncated payload can never turn into UB.
 *
 * Versioning: stored entries are only valid for the simulator physics
 * that produced them. physicsVersion() combines kPhysicsEpoch — bump it
 * whenever a change alters any measured profile value — with the result
 * schema version; the store stamps the tag on every segment and skips
 * segments whose tag does not match, so stale entries self-invalidate
 * after a physics change instead of serving wrong answers.
 */

#ifndef ODRIPS_STORE_RESULT_SCHEMA_HH
#define ODRIPS_STORE_RESULT_SCHEMA_HH

#include <cstdint>
#include <vector>

#include "core/profile.hh"
#include "sim/checkpoint/serializer.hh"

namespace odrips::store
{

/**
 * Physics epoch of the simulator: the generation number of "what the
 * measured numbers are". Any change that alters a measured
 * CyclePowerProfile (power constants, flow timings, Eq. 1, calibration)
 * must bump this, which orphans every previously persisted result.
 * Pure refactors and perf work must NOT bump it — the golden-value
 * suites pin that the numbers stayed put.
 */
constexpr std::uint32_t kPhysicsEpoch = 1;

/** Version of the StoredResult payload encoding below. */
constexpr std::uint32_t kResultSchemaVersion = 1;

/** The 64-bit tag stamped on every store segment. */
constexpr std::uint64_t
physicsVersion()
{
    return (static_cast<std::uint64_t>(kPhysicsEpoch) << 32) |
           kResultSchemaVersion;
}

/** One persisted result: the profile plus its derived statistics. */
struct StoredResult
{
    CyclePowerProfile profile;
    /** Eq. 1 average power at the key's own workload point. */
    double averagePower = 0.0;
    /** profile.transitionOverheadEnergy(), precomputed. */
    double transitionOverheadEnergy = 0.0;
};

/** Build a StoredResult from a measured profile and its config. */
StoredResult makeStoredResult(const CyclePowerProfile &profile,
                              const PlatformConfig &cfg);

/** Append the schema-versioned encoding of @p result to @p w. */
void encodeResult(ckpt::Writer &w, const StoredResult &result);

/**
 * Decode one StoredResult; throws ckpt::SnapshotError on truncation,
 * trailing bytes, or a schema-version mismatch.
 */
StoredResult decodeResult(const std::uint8_t *data, std::size_t size);

inline StoredResult
decodeResult(const std::vector<std::uint8_t> &buf)
{
    return decodeResult(buf.data(), buf.size());
}

} // namespace odrips::store

#endif // ODRIPS_STORE_RESULT_SCHEMA_HH
