/**
 * @file
 * Phase-matched warm checkpoint pool for fleet campaigns.
 *
 * A campaign touches one simulator state per distinct
 * (PlatformConfig x TechniqueSet x behavior phase) key: a simulator
 * warmed with a few cycles shaped like that phase (its heartbeat
 * period and mean active window). The pool captures that state ONCE
 * per key (prime(), parallel) and then serves every calibration run
 * and sim-sampled device by restoring the snapshot into a per-worker
 * arena — O(restore) ~0.3 ms instead of O(build + warm-up) per use.
 *
 * Arenas are keyed (worker slot, device class): every class shares the
 * base PlatformConfig, so one Platform+StandbySimulator per class per
 * worker is enough, and a worker only ever touches its own slot — no
 * locking on the acquire path. When checkpointing is off
 * (ODRIPS_CHECKPOINT=0, or the campaign's naive-cold mode) acquire()
 * instead rebuilds and re-warms a fresh simulator per use; the fork
 * equivalence contract (core/checkpoint.hh) makes both paths
 * bit-identical, which is what the check.sh fleet gate pins.
 */

#ifndef ODRIPS_FLEET_CHECKPOINT_POOL_HH
#define ODRIPS_FLEET_CHECKPOINT_POOL_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/checkpoint.hh"
#include "exec/parallel_sweep.hh"
#include "workload/user_profile.hh"

namespace odrips::fleet
{

/** Pool usage counters (relaxed atomics; telemetry only). */
struct CheckpointPoolStats
{
    std::uint64_t captures = 0;   ///< snapshots taken by prime()
    std::uint64_t restores = 0;   ///< acquires served by restore
    std::uint64_t coldBuilds = 0; ///< acquires paid build + warm-up
    std::uint64_t arenaBuilds = 0; ///< lazily built per-slot arenas
};

/** See file comment. */
class CheckpointPool
{
  public:
    /**
     * @param base  platform configuration shared by every class
     * @param pop   the population (class techniques + phase shapes)
     * @param slots worker-slot count (1 + max workers; slot 0 is the
     *              non-worker caller)
     */
    CheckpointPool(const PlatformConfig &base, const FleetPopulation &pop,
                   std::size_t slots);

    /** Capture one warm snapshot per (class, phase) key, in parallel.
     * Skipped entirely when checkpointing is disabled. */
    void prime(const exec::ExecPolicy &policy);

    /**
     * A simulator in the warmed state of (@p class_index,
     * @p phase_index), owned by @p slot: snapshot-restored when primed,
     * freshly built and re-warmed otherwise. The reference stays valid
     * until the next acquire on the same (slot, class).
     */
    StandbySimulator &acquire(std::size_t slot, std::size_t class_index,
                              std::size_t phase_index);

    /** The fixed warm-up trace for a phase shape. */
    static StandbyTrace warmTrace(const PhaseSpec &spec);

    CheckpointPoolStats stats() const;

    std::size_t keyCount() const { return keyOffset.back(); }

  private:
    struct Arena
    {
        std::unique_ptr<Platform> platform;
        std::unique_ptr<StandbySimulator> simulator;
    };

    std::size_t keyOf(std::size_t class_index,
                      std::size_t phase_index) const
    {
        return keyOffset[class_index] + phase_index;
    }

    void rebuildArena(Arena &arena, std::size_t class_index);

    const PlatformConfig &base;
    const FleetPopulation &population;
    std::vector<std::size_t> keyOffset; ///< class -> first key index
    std::vector<std::unique_ptr<Snapshot>> snapshots; ///< per key
    std::vector<Arena> arenas; ///< slot-major: slot * classes + class
    bool primed = false;

    std::atomic<std::uint64_t> captureCount{0};
    std::atomic<std::uint64_t> restoreCount{0};
    std::atomic<std::uint64_t> coldBuildCount{0};
    std::atomic<std::uint64_t> arenaBuildCount{0};
};

} // namespace odrips::fleet

#endif // ODRIPS_FLEET_CHECKPOINT_POOL_HH
