/**
 * @file
 * Fleet campaign engine: population-scale device-day simulation.
 *
 * A campaign evaluates N device-days of a FleetPopulation against one
 * base PlatformConfig and reports the population *distribution* of
 * standby power (p1/p10/p50/p90/p99 and days-of-standby), not just a
 * mean — ROADMAP item 2. Throughput comes from paying every fixed
 * cost once instead of per device:
 *
 *  - cycle power profiles are measured once per distinct TechniqueSet
 *    through the CycleProfileCache (and the persistent store when
 *    attached), so repeat-profile devices are cache hits;
 *  - per-(class, phase) sim-vs-analytic calibration factors are
 *    computed once, on simulators served by the warm CheckpointPool;
 *  - the per-device hot loop is purely analytic: stream the day's
 *    cycles from DayCycleGenerator, price each with Eq. 1 components
 *    x the phase's calibration factor, Kahan-accumulate — no
 *    allocation, no simulator;
 *  - every simSampleEvery-th device additionally replays its first
 *    cycles on a pool-forked simulator and folds the measured-minus-
 *    analytic residual into its energy, keeping the cycle-accurate
 *    model in the loop at bounded cost.
 *
 * Aggregation is streaming and O(stats): per-batch KahanSum/MinMax
 * partials (batch count capped, merged in batch-index order) plus
 * per-worker QuantileSketches (merged in slot order; u64 bucket adds
 * commute), so the result is bit-identical across --jobs and
 * ODRIPS_CHECKPOINT/ODRIPS_PROFILE_CACHE settings and no per-device
 * value is ever materialized.
 *
 * naiveCold = true is the reference foil for the bench: every device
 * re-pays the uncached profile measurement and a fresh build + warm-up
 * + calibration per phase — identical output, ~two orders of magnitude
 * slower.
 */

#ifndef ODRIPS_FLEET_CAMPAIGN_HH
#define ODRIPS_FLEET_CAMPAIGN_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "fleet/checkpoint_pool.hh"
#include "stats/quantile_sketch.hh"

namespace odrips::fleet
{

/** What to run. */
struct CampaignConfig
{
    PlatformConfig base;
    FleetPopulation population;

    /** Device-days to simulate (one device = one day). */
    std::uint64_t deviceDays = 10000;
    double daySeconds = 86400.0;

    /** Battery capacity for the days-of-standby transform. */
    double batteryWattHours = 40.0;

    /** Campaign seed: device RNG streams fork from it by device id. */
    std::uint64_t seed = 0x0d219500d219ULL;

    /** Devices per dispatch batch (partial-merge granularity). */
    std::uint64_t batchSize = 64;

    /** Every n-th device replays its first cycles on a forked
     * simulator; 0 disables sim sampling. */
    std::uint64_t simSampleEvery = 512;
    std::uint32_t simSampleCycles = 2;

    /** Fixed cycles per calibration run. */
    std::size_t calibrationCycles = 4;

    /** Reference foil: re-pay every fixed cost per device. */
    bool naiveCold = false;
};

/** p1/p10/p50/p90/p99 of one metric. */
struct CampaignPercentiles
{
    double p1 = 0.0;
    double p10 = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
};

/** Counters proving where the work went (stderr only: several vary
 * with jobs / env toggles, unlike the stdout report). */
struct CampaignTelemetry
{
    std::uint64_t devices = 0;
    std::uint64_t cycles = 0;
    std::uint64_t coalescedWakes = 0;
    std::uint64_t simSampledDevices = 0;
    std::uint64_t simulatedCycles = 0;
    std::uint64_t batches = 0;
    std::uint64_t profileMeasurements = 0; ///< uncached measurements paid
    CheckpointPoolStats pool;
    std::uint64_t cacheHits = 0;     ///< CycleProfileCache memo hits
    std::uint64_t cacheStoreHits = 0; ///< served by the persistent store
    /** Devices handled per worker slot (slot 0 = non-worker caller). */
    std::vector<std::uint64_t> devicesPerWorker;
    /** Resident bytes of ALL aggregation state (sketches + partials):
     * the O(stats) spot check — independent of deviceDays. */
    std::uint64_t aggregationBytes = 0;
};

/** Campaign output. */
struct CampaignResult
{
    std::uint64_t devices = 0;

    /** Day-average battery power, W. */
    double meanPowerWatts = 0.0;
    double minPowerWatts = 0.0;
    double maxPowerWatts = 0.0;
    CampaignPercentiles powerWatts;

    /** Days of standby on batteryWattHours (pN days <-> p(100-N)
     * power: the best 1% of devices last p1-power long). */
    CampaignPercentiles daysOfStandby;

    stats::QuantileSketch powerSketch;
    CampaignTelemetry telemetry;
};

/** Run a campaign. Deterministic: the result (telemetry aside) is a
 * pure function of @p cfg for any worker count. */
CampaignResult runCampaign(const CampaignConfig &cfg,
                           const exec::ExecPolicy &policy = {});

/** Deterministic human-readable report (safe for stdout gates). */
void printCampaignReport(std::ostream &os, const CampaignConfig &cfg,
                         const CampaignResult &result);

/** One-line JSON telemetry mirror (stderr; varies with jobs/env). */
void printCampaignTelemetry(std::ostream &os,
                            const CampaignResult &result);

} // namespace odrips::fleet

#endif // ODRIPS_FLEET_CAMPAIGN_HH
