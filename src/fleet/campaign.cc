#include "fleet/campaign.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>

#include "core/profile.hh"
#include "core/profile_cache.hh"
#include "sim/logging.hh"
#include "sim/ticks.hh"
#include "stats/accumulator.hh"

namespace odrips::fleet
{

namespace
{

/** Hard cap on replayed cycles per sampled device (stack storage). */
constexpr std::uint32_t kMaxSampleCycles = 8;
/** Hard cap on batch partials retained (the O(stats) bound). */
constexpr std::uint64_t kMaxBatches = 1024;
/** Cold mode recomputes per-phase factors on the stack. */
constexpr std::size_t kMaxColdPhases = 16;

/** Mergeable per-batch aggregation state. */
struct BatchPartial
{
    stats::KahanSum powerSum;
    stats::MinMax power;
    std::uint64_t devices = 0;
    std::uint64_t cycles = 0;
    std::uint64_t coalescedWakes = 0;
    std::uint64_t simSampledDevices = 0;
    std::uint64_t simulatedCycles = 0;
    std::uint64_t profileMeasurements = 0;
};

/** Worker-slot index: 0 for the non-worker caller, worker + 1 else. */
std::size_t
slotIndex()
{
    const std::size_t worker = exec::ThreadPool::currentWorkerIndex();
    return worker == exec::ThreadPool::kNoWorker ? 0 : worker + 1;
}

/** Upper bound on concurrent workers any sweep under @p policy can
 * use, counting nested-inline and default-pool execution. */
std::size_t
slotCount(const exec::ExecPolicy &policy)
{
    unsigned workers = policy.jobs;
    if (policy.pool != nullptr)
        workers = std::max(workers, policy.pool->size());
    if (exec::ThreadPool *cur = exec::ThreadPool::current())
        workers = std::max(workers, cur->size());
    workers = std::max(workers, exec::defaultJobs());
    if (exec::ThreadPool *def = exec::defaultPool())
        workers = std::max(workers, def->size());
    return static_cast<std::size_t>(workers) + 1;
}

/** Battery energy of one cycle from Eq. 1 components: entry + exit
 * transition energies plus the three residency segments. */
double
cycleEnergy(const CyclePowerProfile &profile, const StandbyCycle &cycle,
            double core_hz)
{
    const double idle_s = ticksToSeconds(cycle.idleDwell);
    const double cpu_s = static_cast<double>(cycle.cpuCycles) / core_hz;
    const double stall_s = ticksToSeconds(cycle.stallTime);
    return profile.entryEnergy + profile.exitEnergy +
           profile.idlePower * idle_s + profile.activePower * cpu_s +
           profile.stallPower * stall_s;
}

/**
 * Sim-vs-analytic calibration for one (class, phase) key: run the
 * fixed calibration trace on @p sim (already in the key's warm state)
 * and return measured energy / analytic energy. Called identically by
 * the prologue and by every naive-cold device, so the two modes
 * produce bit-identical factors.
 */
double
calibrateFactor(StandbySimulator &sim, const CyclePowerProfile &profile,
                const PhaseSpec &spec, const CampaignConfig &cfg)
{
    const StandbyTrace trace = StandbyWorkloadGenerator::fixed(
        cfg.calibrationCycles,
        secondsToTicks(spec.heartbeatPeriodSeconds),
        secondsToTicks(0.5 *
                       (spec.activeMinSeconds + spec.activeMaxSeconds)),
        spec.scalableFraction, DayCycleGenerator::kReferenceHz);
    const StandbyResult r = sim.run(trace);
    const double measured =
        r.averageBatteryPower * ticksToSeconds(r.simulatedTime);
    stats::KahanSum analytic;
    for (const StandbyCycle &cycle : trace.cycles)
        analytic.add(cycleEnergy(profile, cycle,
                                 cfg.base.coreFrequencyHz));
    return analytic.value() > 0.0 ? measured / analytic.value() : 1.0;
}

/**
 * Simulate one device-day into @p part / @p sketch.
 *
 * The cycle loop below is the campaign's per-device hot path: it must
 * stay free of heap allocation and unordered-container iteration
 * (enforced by the fleet-hotloop lint rule via the annotation).
 */
// fleet: hotloop
void
processDevice(const CampaignConfig &cfg, const Rng &device_base,
              std::uint64_t device_id,
              const std::vector<CyclePowerProfile> &profiles,
              const std::vector<std::vector<double>> &factors,
              CheckpointPool &pool, BatchPartial &part,
              stats::QuantileSketch &sketch)
{
    const std::size_t cls = cfg.population.classForDevice(device_id);
    const DeviceClass &dc = cfg.population.classes[cls];

    CyclePowerProfile prof;
    double coldFactors[kMaxColdPhases];
    const double *factor = nullptr;
    if (cfg.naiveCold) {
        // The naive foil: every device re-pays the profile measurement
        // and a fresh build + warm-up + calibration per phase. The
        // recomputation is the prologue's, so the output is identical.
        prof = measureCycleProfileUncached(cfg.base, dc.techniques);
        ++part.profileMeasurements;
        const std::size_t slot = slotIndex();
        const std::size_t phases = dc.profile.phases.size();
        for (std::size_t p = 0; p < phases; ++p) {
            StandbySimulator &sim = pool.acquire(slot, cls, p);
            coldFactors[p] = calibrateFactor(
                sim, prof, dc.profile.phases[p], cfg);
        }
        factor = coldFactors;
    } else {
        prof = profiles[cls];
        factor = factors[cls].data();
    }

    const bool sampled = cfg.simSampleEvery != 0 &&
                         device_id % cfg.simSampleEvery == 0 &&
                         cfg.simSampleCycles > 0;
    StandbyCycle capturedCycle[kMaxSampleCycles];
    std::size_t capturedPhase[kMaxSampleCycles];
    std::uint32_t captured = 0;
    const std::uint32_t wantCaptured =
        std::min(cfg.simSampleCycles, kMaxSampleCycles);

    DayCycleGenerator gen(dc.profile, device_base.fork(device_id),
                          cfg.daySeconds);
    stats::KahanSum energy;
    std::uint64_t cycles = 0;
    StandbyCycle cycle;
    std::size_t phase = 0;
    while (gen.next(cycle, phase)) {
        ++cycles;
        energy.add(cycleEnergy(prof, cycle, cfg.base.coreFrequencyHz) *
                   factor[phase]);
        if (sampled && captured < wantCaptured) {
            capturedCycle[captured] = cycle;
            capturedPhase[captured] = phase;
            ++captured;
        }
    }
    part.cycles += cycles;
    part.coalescedWakes += gen.coalescedWakes();

    if (sampled && captured > 0) {
        // Replay the captured cycles on a pool-forked simulator and
        // fold the measured-minus-analytic residual into the day.
        StandbySimulator &sim =
            pool.acquire(slotIndex(), cls, capturedPhase[0]);
        RunProgress progress = sim.beginRun();
        for (std::uint32_t i = 0; i < captured; ++i)
            sim.stepCycle(progress, capturedCycle[i]);
        const StandbyResult r = sim.finishRun(progress);
        const double measured =
            r.averageBatteryPower * ticksToSeconds(r.simulatedTime);
        stats::KahanSum analytic;
        for (std::uint32_t i = 0; i < captured; ++i)
            analytic.add(cycleEnergy(prof, capturedCycle[i],
                                     cfg.base.coreFrequencyHz) *
                         factor[capturedPhase[i]]);
        energy.add(measured - analytic.value());
        ++part.simSampledDevices;
        part.simulatedCycles += captured;
    }

    const double dayPower = energy.value() / cfg.daySeconds;
    ++part.devices;
    part.powerSum.add(dayPower);
    part.power.add(dayPower);
    sketch.add(dayPower);
}

double
daysOfStandby(double power_watts, double battery_watt_hours)
{
    return power_watts > 0.0 ? battery_watt_hours / (power_watts * 24.0)
                             : 0.0;
}

} // namespace

CampaignResult
runCampaign(const CampaignConfig &cfg, const exec::ExecPolicy &policy)
{
    CampaignResult out;
    const std::uint64_t n = cfg.deviceDays;
    const std::size_t numClasses = cfg.population.classes.size();
    if (n == 0 || numClasses == 0)
        return out;
    if (cfg.naiveCold) {
        for (const DeviceClass &dc : cfg.population.classes)
            if (dc.profile.phases.size() > kMaxColdPhases)
                fatal("naive-cold campaigns support at most ",
                      kMaxColdPhases, " phases per profile");
    }

    const std::size_t slots = slotCount(policy);

    // Fixed cost 1: one profile per distinct TechniqueSet, through the
    // cache (and the persistent store when attached).
    std::vector<CyclePowerProfile> profiles;
    profiles.reserve(numClasses);
    for (const DeviceClass &dc : cfg.population.classes)
        profiles.push_back(measureCycleProfile(cfg.base, dc.techniques));

    // Fixed cost 2: one warm snapshot + calibration factor per
    // (class, phase) key.
    CheckpointPool pool(cfg.base, cfg.population, slots);
    if (!cfg.naiveCold)
        pool.prime(policy);

    std::vector<std::pair<std::size_t, std::size_t>> keyMap;
    for (std::size_t c = 0; c < numClasses; ++c) {
        const std::size_t phases =
            cfg.population.classes[c].profile.phases.size();
        for (std::size_t p = 0; p < phases; ++p)
            keyMap.emplace_back(c, p);
    }
    struct FactorResult
    {
        double factor = 1.0;
    };
    const std::vector<FactorResult> factorPoints = exec::parallelSweep(
        "fleet-calibrate", keyMap.size(),
        [&](const exec::SweepPoint &point) {
            const auto [cls, phase] = keyMap[point.index];
            StandbySimulator &sim =
                pool.acquire(slotIndex(), cls, phase);
            return FactorResult{calibrateFactor(
                sim, profiles[cls],
                cfg.population.classes[cls].profile.phases[phase],
                cfg)};
        },
        policy);
    std::vector<std::vector<double>> factors(numClasses);
    for (std::size_t k = 0; k < keyMap.size(); ++k)
        factors[keyMap[k].first].push_back(factorPoints[k].factor);

    // The device sweep: contiguous batches, each reduced into one
    // partial. The batch count is capped so aggregation state stays
    // O(stats) no matter how many device-days run.
    const std::uint64_t batchSize = std::max<std::uint64_t>(
        1, cfg.batchSize);
    std::uint64_t numBatches =
        std::min((n + batchSize - 1) / batchSize, kMaxBatches);
    const std::uint64_t grain = (n + numBatches - 1) / numBatches;
    numBatches = (n + grain - 1) / grain;

    std::vector<stats::QuantileSketch> sketches(slots);
    std::vector<std::uint64_t> perWorkerDevices(slots, 0);
    const Rng deviceBase(cfg.seed);

    const std::vector<BatchPartial> partials = exec::parallelSweep(
        "fleet-campaign", static_cast<std::size_t>(numBatches),
        [&](const exec::SweepPoint &point) {
            BatchPartial part;
            const std::uint64_t begin =
                static_cast<std::uint64_t>(point.index) * grain;
            const std::uint64_t end = std::min(n, begin + grain);
            const std::size_t slot = slotIndex();
            stats::QuantileSketch &sketch = sketches[slot];
            for (std::uint64_t id = begin; id < end; ++id)
                processDevice(cfg, deviceBase, id, profiles, factors,
                              pool, part, sketch);
            perWorkerDevices[slot] += end - begin;
            return part;
        },
        policy, cfg.seed);

    // Deterministic reduction: batch partials in index order, worker
    // sketches in slot order (bucket adds commute, so which worker
    // handled which batch cannot matter).
    stats::KahanSum powerSum;
    stats::MinMax power;
    CampaignTelemetry &tel = out.telemetry;
    for (const BatchPartial &part : partials) {
        powerSum.merge(part.powerSum);
        power.merge(part.power);
        tel.devices += part.devices;
        tel.cycles += part.cycles;
        tel.coalescedWakes += part.coalescedWakes;
        tel.simSampledDevices += part.simSampledDevices;
        tel.simulatedCycles += part.simulatedCycles;
        tel.profileMeasurements += part.profileMeasurements;
    }
    for (const stats::QuantileSketch &sketch : sketches)
        out.powerSketch.merge(sketch);

    out.devices = tel.devices;
    out.meanPowerWatts =
        tel.devices > 0
            ? powerSum.value() / static_cast<double>(tel.devices)
            : 0.0;
    out.minPowerWatts = power.minimum;
    out.maxPowerWatts = power.maximum;
    out.powerWatts.p1 = out.powerSketch.quantile(0.01);
    out.powerWatts.p10 = out.powerSketch.quantile(0.10);
    out.powerWatts.p50 = out.powerSketch.quantile(0.50);
    out.powerWatts.p90 = out.powerSketch.quantile(0.90);
    out.powerWatts.p99 = out.powerSketch.quantile(0.99);
    // Best-lasting 1% of devices are the lowest-power 1%.
    out.daysOfStandby.p1 =
        daysOfStandby(out.powerWatts.p99, cfg.batteryWattHours);
    out.daysOfStandby.p10 =
        daysOfStandby(out.powerWatts.p90, cfg.batteryWattHours);
    out.daysOfStandby.p50 =
        daysOfStandby(out.powerWatts.p50, cfg.batteryWattHours);
    out.daysOfStandby.p90 =
        daysOfStandby(out.powerWatts.p10, cfg.batteryWattHours);
    out.daysOfStandby.p99 =
        daysOfStandby(out.powerWatts.p1, cfg.batteryWattHours);

    tel.batches = numBatches;
    tel.pool = pool.stats();
    const CycleProfileCacheStats cacheStats =
        CycleProfileCache::global().statistics();
    tel.cacheHits = cacheStats.hits;
    tel.cacheStoreHits = cacheStats.storeHits;
    tel.devicesPerWorker = perWorkerDevices;
    tel.aggregationBytes =
        static_cast<std::uint64_t>(slots) *
            stats::QuantileSketch::stateBytes() +
        numBatches * sizeof(BatchPartial) +
        static_cast<std::uint64_t>(slots) * sizeof(std::uint64_t);
    return out;
}

void
printCampaignReport(std::ostream &os, const CampaignConfig &cfg,
                    const CampaignResult &result)
{
    const auto mw = [](double watts) { return watts * 1e3; };
    os << "== fleet campaign ==\n";
    os << "device-days     : " << result.devices << "\n";
    os << "classes         :";
    for (const DeviceClass &dc : cfg.population.classes)
        os << " " << dc.profile.name << "(" << dc.techniques.label()
           << ")";
    os << "\n";
    os << "cycles          : " << result.telemetry.cycles
       << " (coalesced wakes absorbed: "
       << result.telemetry.coalescedWakes << ")\n";
    os << "sim-sampled     : " << result.telemetry.simSampledDevices
       << " devices, " << result.telemetry.simulatedCycles
       << " cycles\n";
    os << std::fixed << std::setprecision(6);
    os << "mean power      : " << mw(result.meanPowerWatts) << " mW\n";
    os << "min / max power : " << mw(result.minPowerWatts) << " / "
       << mw(result.maxPowerWatts) << " mW\n";
    os << "percentiles (battery " << std::setprecision(1)
       << cfg.batteryWattHours << " Wh):\n";
    const CampaignPercentiles &p = result.powerWatts;
    const CampaignPercentiles &d = result.daysOfStandby;
    const auto row = [&](const char *name, double watts, double days) {
        os << "  " << name << "  power " << std::setprecision(6)
           << mw(watts) << " mW  standby " << std::setprecision(3)
           << days << " days\n";
    };
    row("p1 ", p.p1, d.p99);
    row("p10", p.p10, d.p90);
    row("p50", p.p50, d.p50);
    row("p90", p.p90, d.p10);
    row("p99", p.p99, d.p1);
}

void
printCampaignTelemetry(std::ostream &os, const CampaignResult &result)
{
    const CampaignTelemetry &tel = result.telemetry;
    os << "fleet-campaign-telemetry: {"
       << "\"devices\": " << tel.devices
       << ", \"cycles\": " << tel.cycles
       << ", \"coalesced_wakes\": " << tel.coalescedWakes
       << ", \"sim_sampled_devices\": " << tel.simSampledDevices
       << ", \"simulated_cycles\": " << tel.simulatedCycles
       << ", \"batches\": " << tel.batches
       << ", \"profile_measurements\": " << tel.profileMeasurements
       << ", \"pool_captures\": " << tel.pool.captures
       << ", \"pool_restores\": " << tel.pool.restores
       << ", \"pool_cold_builds\": " << tel.pool.coldBuilds
       << ", \"pool_arena_builds\": " << tel.pool.arenaBuilds
       << ", \"profile_cache_hits\": " << tel.cacheHits
       << ", \"profile_store_hits\": " << tel.cacheStoreHits
       << ", \"aggregation_bytes\": " << tel.aggregationBytes
       << ", \"devices_per_worker\": [";
    for (std::size_t i = 0; i < tel.devicesPerWorker.size(); ++i)
        os << (i > 0 ? ", " : "") << tel.devicesPerWorker[i];
    os << "]}\n";
}

} // namespace odrips::fleet
