#include "fleet/checkpoint_pool.hh"

namespace odrips::fleet
{

CheckpointPool::CheckpointPool(const PlatformConfig &base_config,
                               const FleetPopulation &pop,
                               std::size_t slots)
    : base(base_config), population(pop)
{
    keyOffset.reserve(population.classes.size() + 1);
    std::size_t offset = 0;
    for (const DeviceClass &cls : population.classes) {
        keyOffset.push_back(offset);
        offset += cls.profile.phases.size();
    }
    keyOffset.push_back(offset);
    snapshots.resize(offset);
    arenas.resize(slots * population.classes.size());
}

StandbyTrace
CheckpointPool::warmTrace(const PhaseSpec &spec)
{
    const double mean_active =
        0.5 * (spec.activeMinSeconds + spec.activeMaxSeconds);
    return StandbyWorkloadGenerator::fixed(
        4, secondsToTicks(spec.heartbeatPeriodSeconds),
        secondsToTicks(mean_active), spec.scalableFraction,
        DayCycleGenerator::kReferenceHz);
}

void
CheckpointPool::prime(const exec::ExecPolicy &policy)
{
    if (!checkpointSweepsEnabled() || primed)
        return;
    const std::size_t keys = keyCount();
    // Key index -> (class, phase) for the sweep body.
    std::vector<std::pair<std::size_t, std::size_t>> keyMap(keys);
    for (std::size_t c = 0; c < population.classes.size(); ++c)
        for (std::size_t p = 0; p < keyOffset[c + 1] - keyOffset[c]; ++p)
            keyMap[keyOffset[c] + p] = {c, p};

    snapshots = exec::parallelSweep(
        "fleet-pool-prime", keys,
        [&](const exec::SweepPoint &point) {
            const auto [cls, phase] = keyMap[point.index];
            const DeviceClass &dc = population.classes[cls];
            Platform platform(base);
            StandbySimulator sim(platform, dc.techniques);
            sim.run(warmTrace(dc.profile.phases[phase]));
            captureCount.fetch_add(1, std::memory_order_relaxed);
            return std::make_unique<Snapshot>(Snapshot::capture(sim));
        },
        policy);
    primed = true;
}

void
CheckpointPool::rebuildArena(Arena &arena, std::size_t class_index)
{
    arena.simulator.reset();
    arena.platform = std::make_unique<Platform>(base);
    arena.simulator = std::make_unique<StandbySimulator>(
        *arena.platform, population.classes[class_index].techniques);
}

StandbySimulator &
CheckpointPool::acquire(std::size_t slot, std::size_t class_index,
                        std::size_t phase_index)
{
    Arena &arena = arenas[slot * population.classes.size() + class_index];
    const std::size_t key = keyOf(class_index, phase_index);
    if (primed && snapshots[key] != nullptr) {
        if (arena.simulator == nullptr) {
            rebuildArena(arena, class_index);
            arenaBuildCount.fetch_add(1, std::memory_order_relaxed);
        }
        snapshots[key]->restoreInto(*arena.simulator);
        restoreCount.fetch_add(1, std::memory_order_relaxed);
        return *arena.simulator;
    }
    // Unprimed (checkpointing off / naive-cold): pay build + warm-up.
    rebuildArena(arena, class_index);
    const DeviceClass &dc = population.classes[class_index];
    arena.simulator->run(warmTrace(dc.profile.phases[phase_index]));
    coldBuildCount.fetch_add(1, std::memory_order_relaxed);
    return *arena.simulator;
}

CheckpointPoolStats
CheckpointPool::stats() const
{
    CheckpointPoolStats out;
    out.captures = captureCount.load(std::memory_order_relaxed);
    out.restores = restoreCount.load(std::memory_order_relaxed);
    out.coldBuilds = coldBuildCount.load(std::memory_order_relaxed);
    out.arenaBuilds = arenaBuildCount.load(std::memory_order_relaxed);
    return out;
}

} // namespace odrips::fleet
