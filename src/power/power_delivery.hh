/**
 * @file
 * Power-delivery (voltage-regulator chain) model.
 *
 * The paper measures a 74% delivery efficiency in DRIPS and folds the
 * delivery loss into each component as a "tax" (footnote 5: a 10 mW
 * component costs 10/0.74 = 13.51 mW at the battery). We support both
 * that per-state fixed-efficiency view and a load-dependent curve
 * (efficiency collapses at light load because of fixed regulator
 * losses), which the ABL-PD ablation sweeps.
 */

#ifndef ODRIPS_POWER_POWER_DELIVERY_HH
#define ODRIPS_POWER_POWER_DELIVERY_HH

#include "sim/logging.hh"
#include "sim/units.hh"

namespace odrips
{

/** Battery-side power as a function of nominal load power. */
class PowerDelivery // ckpt: derived
{
  public:
    /** Create a model with a fixed efficiency (paper's view). */
    static PowerDelivery
    fixedEfficiency(double efficiency)
    {
        ODRIPS_ASSERT(efficiency > 0 && efficiency <= 1.0,
                      "efficiency out of range");
        PowerDelivery pd;
        pd.kind = Kind::Fixed;
        pd.eff = efficiency;
        return pd;
    }

    /**
     * Create a load-curve model: loss = fixed + alpha * load, so
     * efficiency = load / (load + fixed + alpha * load). At light loads
     * the fixed loss dominates and efficiency drops.
     */
    static PowerDelivery
    loadCurve(Milliwatts fixed_loss, double proportional_loss)
    {
        ODRIPS_ASSERT(fixed_loss >= Milliwatts::zero() &&
                          proportional_loss >= 0,
                      "negative loss");
        PowerDelivery pd;
        pd.kind = Kind::Curve;
        pd.fixedLoss = fixed_loss;
        pd.alpha = proportional_loss;
        return pd;
    }

    /**
     * Create a two-level model: below @p threshold of load the
     * low-power regulator path is active with @p low_eff (the paper's
     * 74% in DRIPS); at or above it the main regulators run at
     * @p high_eff. This reproduces the paper's per-state "tax".
     */
    static PowerDelivery
    stepped(Milliwatts threshold, double low_eff, double high_eff)
    {
        ODRIPS_ASSERT(low_eff > 0 && low_eff <= 1.0 && high_eff > 0 &&
                          high_eff <= 1.0,
                      "efficiency out of range");
        PowerDelivery pd;
        pd.kind = Kind::Stepped;
        pd.threshold = threshold;
        pd.eff = low_eff;
        pd.effHigh = high_eff;
        return pd;
    }

    /** Battery power for a given nominal load. */
    Milliwatts
    batteryPower(Milliwatts load) const
    {
        switch (kind) {
          case Kind::Fixed:
            return load / eff;
          case Kind::Stepped:
            return load / (load < threshold ? eff : effHigh);
          case Kind::Curve:
            break;
        }
        return load + fixedLoss + alpha * load;
    }

    /** Efficiency at a given load. */
    double
    efficiency(Milliwatts load) const
    {
        if (kind == Kind::Fixed)
            return eff;
        const Milliwatts battery = batteryPower(load);
        return battery > Milliwatts::zero() ? load / battery : 1.0;
    }

  private:
    enum class Kind { Fixed, Stepped, Curve };

    PowerDelivery() = default;

    Kind kind = Kind::Fixed;
    double eff = 1.0;
    double effHigh = 1.0;
    Milliwatts threshold;
    Milliwatts fixedLoss;
    double alpha = 0.0;
};

} // namespace odrips

#endif // ODRIPS_POWER_POWER_DELIVERY_HH
