/**
 * @file
 * Voltage rails.
 *
 * Fig. 1(a) highlights the always-on (AON) supply that keeps the wake
 * machinery alive through DRIPS, next to the switchable compute/SA
 * rails. A Rail groups PowerComponents electrically (orthogonally to
 * their reporting group) so per-rail power and current can be
 * inspected — e.g. to verify that ODRIPS drains the processor's AON
 * rail down to the Boot SRAM's retention trickle.
 */

#ifndef ODRIPS_POWER_RAIL_HH
#define ODRIPS_POWER_RAIL_HH

#include <memory>
#include <string>
#include <vector>

#include "power/component.hh"
#include "sim/logging.hh"
#include "sim/named.hh"
#include "sim/units.hh"
#include "stats/report.hh"

namespace odrips
{

/** A voltage rail with attached components. */
class Rail : public Named
{
  public:
    Rail(std::string name, double rail_volts)
        : Named(std::move(name)), volts_(rail_volts)
    {
        ODRIPS_ASSERT(rail_volts > 0, "rail voltage must be positive");
    }

    double volts() const { return volts_; }

    /** Attach a component (a component may sit on one rail only;
     * enforced by the RailSet). */
    void attach(const PowerComponent &component)
    {
        components.push_back(&component);
    }

    /** Instantaneous power drawn from this rail. */
    Milliwatts
    power() const
    {
        Milliwatts sum;
        for (const PowerComponent *c : components)
            sum += c->power();
        return sum;
    }

    /** Instantaneous current in amperes. */
    double current() const { return power().watts() / volts_; }

    std::size_t componentCount() const { return components.size(); }

  private:
    double volts_; // ckpt: derived
    std::vector<const PowerComponent *> components;
};

/** The platform's set of rails. */
class RailSet
{
  public:
    /** Create a rail. */
    Rail &
    add(std::string name, double rail_volts)
    {
        for (const auto &r : rails)
            ODRIPS_ASSERT(r->name() != name, "duplicate rail ", name);
        rails.push_back(
            std::make_unique<Rail>(std::move(name), rail_volts));
        return *rails.back();
    }

    /** Attach a component to a named rail (each component once). */
    void
    attach(const std::string &rail_name, const PowerComponent &component)
    {
        for (const PowerComponent *seen : attached) {
            ODRIPS_ASSERT(seen != &component,
                          "component '", component.name(),
                          "' attached to two rails");
        }
        find(rail_name).attach(component);
        attached.push_back(&component);
    }

    Rail &
    find(const std::string &name)
    {
        for (const auto &r : rails) {
            if (r->name() == name)
                return *r;
        }
        fatal("no rail named '", name, "'");
    }

    const std::vector<std::unique_ptr<Rail>> &all() const
    {
        return rails;
    }

    /** Per-rail power/current table. */
    stats::Table
    toTable(const std::string &title) const
    {
        stats::Table table(title);
        table.setHeader({"rail", "voltage", "power", "current"});
        for (const auto &r : rails) {
            table.addRow({r->name(), stats::fmt(r->volts(), 2) + " V",
                          stats::fmtPower(r->power()),
                          stats::fmt(r->current() * 1e3, 3) + " mA"});
        }
        return table;
    }

  private:
    std::vector<std::unique_ptr<Rail>> rails; // ckpt: skip(component wiring, rebuilt at construction)
    std::vector<const PowerComponent *> attached; // ckpt: skip(component wiring, rebuilt at construction)
};

} // namespace odrips

#endif // ODRIPS_POWER_RAIL_HH
