#include "power/process_scaling.hh"

#include "sim/logging.hh"

namespace odrips
{

std::string
to_string(ProcessNode node)
{
    switch (node) {
      case ProcessNode::Nm45: return "45nm";
      case ProcessNode::Nm32: return "32nm";
      case ProcessNode::Nm22: return "22nm";
      case ProcessNode::Nm14: return "14nm";
      case ProcessNode::Nm10: return "10nm";
      case ProcessNode::Nm7: return "7nm";
    }
    return "?";
}

NodeCharacteristics
nodeCharacteristics(ProcessNode node)
{
    // Relative to 45 nm planar. Trend-calibrated (see header).
    switch (node) {
      case ProcessNode::Nm45: return {1.00, 1.00, 1.00};
      case ProcessNode::Nm32: return {0.93, 0.72, 0.85};
      case ProcessNode::Nm22: return {0.86, 0.52, 0.70};
      case ProcessNode::Nm14: return {0.79, 0.37, 0.52};
      case ProcessNode::Nm10: return {0.75, 0.28, 0.42};
      case ProcessNode::Nm7: return {0.70, 0.21, 0.35};
    }
    panic("unknown process node");
}

double
dynamicScale(ProcessNode from, ProcessNode to)
{
    const NodeCharacteristics a = nodeCharacteristics(from);
    const NodeCharacteristics b = nodeCharacteristics(to);
    const double v = b.vdd / a.vdd;
    return (b.capacitance / a.capacitance) * v * v;
}

double
leakageScale(ProcessNode from, ProcessNode to)
{
    const NodeCharacteristics a = nodeCharacteristics(from);
    const NodeCharacteristics b = nodeCharacteristics(to);
    return (b.leakage / a.leakage) * (b.vdd / a.vdd);
}

Milliwatts
scaleMixedPower(Milliwatts measured, double leakage_fraction,
                double dynamic_fraction, ProcessNode from, ProcessNode to)
{
    ODRIPS_ASSERT(leakage_fraction >= 0 && dynamic_fraction >= 0 &&
                      leakage_fraction + dynamic_fraction <= 1.0 + 1e-9,
                  "power fractions out of range");
    const double fixed_fraction =
        1.0 - leakage_fraction - dynamic_fraction;
    return measured * (leakage_fraction * leakageScale(from, to) +
                       dynamic_fraction * dynamicScale(from, to) +
                       fixed_fraction);
}

} // namespace odrips
