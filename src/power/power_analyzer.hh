/**
 * @file
 * Sampling power analyzer, emulating the measurement infrastructure of
 * the paper (Keysight N6705B DC power analyzer + N6781A SMU): up to four
 * analog channels sampled at a fixed interval (50 us in the paper), each
 * channel bound to a probe function.
 */

#ifndef ODRIPS_POWER_POWER_ANALYZER_HH
#define ODRIPS_POWER_POWER_ANALYZER_HH

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/sim_object.hh"
#include "sim/units.hh"
#include "stats/stat.hh"

namespace odrips
{

/** One analyzer channel: a probe plus its sample statistics. */
struct AnalyzerChannel
{
    std::string label;
    std::function<Milliwatts()> probe;
    std::uint64_t samples = 0;
    Milliwatts sum;
    Milliwatts minSample;
    Milliwatts maxSample;
    /** Optional full trace (tick, power) when tracing is enabled. */
    std::vector<std::pair<Tick, Milliwatts>> trace;

    Milliwatts
    average() const
    {
        return samples ? sum / static_cast<double>(samples)
                       : Milliwatts::zero();
    }
};

/**
 * Samples its channels periodically on the event queue while armed.
 * Emulates a 4-channel source-measurement setup; more channels are
 * allowed but warn (the real instrument has four).
 */
class PowerAnalyzer : public SimObject
{
  public:
    /**
     * @param name            instance name
     * @param event_queue     driving queue
     * @param sample_interval sampling period (default 50 us, as in the
     *                        paper's measurements)
     */
    PowerAnalyzer(std::string name, EventQueue &event_queue,
                  Tick sample_interval = 50 * oneUs);

    /** Add a measurement channel; returns its index. */
    std::size_t addChannel(std::string label,
                           std::function<Milliwatts()> probe);

    /** Begin sampling (first sample at now + interval). */
    void arm();

    /** Stop sampling. */
    void disarm();

    bool armed() const { return sampling.scheduled(); }

    /** Keep the full per-sample trace for each channel. */
    void enableTrace(bool enable) { tracing = enable; }

    /** Clear all channel statistics and traces. */
    void clear();

    const AnalyzerChannel &channel(std::size_t index) const;
    std::size_t channelCount() const { return channels.size(); }

    Tick sampleInterval() const { return interval; }

  private:
    void takeSample();

    Tick interval;
    std::vector<AnalyzerChannel> channels;
    bool tracing = false;
    Event sampling;
};

} // namespace odrips

#endif // ODRIPS_POWER_POWER_ANALYZER_HH
