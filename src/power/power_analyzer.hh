/**
 * @file
 * Sampling power analyzer, emulating the measurement infrastructure of
 * the paper (Keysight N6705B DC power analyzer + N6781A SMU): up to four
 * analog channels sampled at a fixed interval (50 us in the paper), each
 * channel bound to a probe function.
 */

#ifndef ODRIPS_POWER_POWER_ANALYZER_HH
#define ODRIPS_POWER_POWER_ANALYZER_HH

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/checkpoint/serializer.hh"
#include "sim/event_queue.hh"
#include "sim/sim_object.hh"
#include "sim/units.hh"
#include "stats/stat.hh"

namespace odrips
{

/** One analyzer channel: a probe plus its sample statistics. */
struct AnalyzerChannel
{
    std::string label; // ckpt: skip(channel identity, fixed at registration)
    std::function<Milliwatts()> probe;
    std::uint64_t samples = 0;
    Milliwatts sum;
    Milliwatts minSample;
    Milliwatts maxSample;
    /** Optional full trace (tick, power) when tracing is enabled. */
    std::vector<std::pair<Tick, Milliwatts>> trace;

    Milliwatts
    average() const
    {
        return samples ? sum / static_cast<double>(samples)
                       : Milliwatts::zero();
    }
};

/**
 * Samples its channels periodically on the event queue while armed.
 * Emulates a 4-channel source-measurement setup; more channels are
 * allowed but warn (the real instrument has four).
 */
class PowerAnalyzer : public SimObject
{
  public:
    /**
     * @param name            instance name
     * @param event_queue     driving queue
     * @param sample_interval sampling period (default 50 us, as in the
     *                        paper's measurements)
     */
    PowerAnalyzer(std::string name, EventQueue &event_queue,
                  Tick sample_interval = 50 * oneUs);

    /** Add a measurement channel; returns its index. */
    std::size_t addChannel(std::string label,
                           std::function<Milliwatts()> probe);

    /** Begin sampling (first sample at now + interval). */
    void arm();

    /** Stop sampling. */
    void disarm();

    bool armed() const { return sampling.scheduled(); }

    /** Keep the per-sample trace for each channel (bounded by the
     * trace limit; see setTraceLimit()). */
    void enableTrace(bool enable);

    /**
     * Bound each channel's trace to @p max_samples entries. When a
     * trace fills up, every other retained sample is dropped and the
     * effective trace interval doubles (with a warning) — memory stays
     * bounded on arbitrarily long runs while the trace keeps covering
     * the whole run. Statistics (min/max/average) always see every
     * sample. Must be at least 2.
     */
    void setTraceLimit(std::size_t max_samples);
    std::size_t traceLimit() const { return traceCap; }

    /** Current trace decimation stride: a sample lands in the trace
     * every stride * sampleInterval(). 1 until the first decimation. */
    std::uint64_t traceDecimationStride() const { return traceStride; }

    /** Clear all channel statistics and traces. */
    void clear();

    const AnalyzerChannel &channel(std::size_t index) const;
    std::size_t channelCount() const { return channels.size(); }

    Tick sampleInterval() const { return interval; }

    /**
     * @name Checkpoint support
     * Serializes channel statistics/traces and the sampling-event
     * timing (when, sequence); channel probes are reconstructed by the
     * platform constructor, so only their count is verified. loadState
     * must run after the event-queue clock has been restored (the
     * original sequence number is re-applied to keep same-tick event
     * ordering).
     * @{
     */
    void saveState(ckpt::Writer &w) const;
    void loadState(ckpt::Reader &r);
    /** @} */

  private:
    void takeSample();

    /** Halve every trace and double the stride (trace full). */
    void decimateTraces();

    Tick interval; // ckpt: derived
    std::vector<AnalyzerChannel> channels;
    bool tracing = false;
    /** Per-channel trace entry cap (default 1 Mi samples ~ 16 MiB). */
    std::size_t traceCap = std::size_t{1} << 20;
    /** Record every traceStride-th sample; grows by decimation. */
    std::uint64_t traceStride = 1;
    /** Samples left to skip before the next recorded one. */
    std::uint64_t traceSkip = 0;
    Event sampling;
};

} // namespace odrips

#endif // ODRIPS_POWER_POWER_ANALYZER_HH
