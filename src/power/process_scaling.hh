/**
 * @file
 * Process-technology power scaling.
 *
 * The paper's power-model methodology (Sec. 7) measures a Haswell-ULT
 * platform at 22 nm and scales the numbers to the 14 nm Skylake target
 * using process characteristics, citing Stillmaker & Baas-style scaling
 * equations. This module provides that scaling step: per-node relative
 * supply voltage, switched capacitance, and leakage-per-device factors,
 * and the derived dynamic/leakage power scale factors between nodes.
 *
 * The factors are calibrated to published inter-node trends; they are
 * deliberately simple (a single factor per node and power type), which
 * matches how the paper applies them (one multiplicative scale per chip).
 */

#ifndef ODRIPS_POWER_PROCESS_SCALING_HH
#define ODRIPS_POWER_PROCESS_SCALING_HH

#include <string>

#include "sim/units.hh"

namespace odrips
{

/** Supported process nodes. */
enum class ProcessNode
{
    Nm45,
    Nm32,
    Nm22, ///< Haswell-ULT (baseline measurements)
    Nm14, ///< Skylake (target)
    Nm10,
    Nm7,
};

/** Printable node name ("22nm"). */
std::string to_string(ProcessNode node);

/** Per-node electrical characteristics relative to 45 nm. */
struct NodeCharacteristics
{
    double vdd;        ///< relative nominal supply voltage
    double capacitance;///< relative switched capacitance per gate
    double leakage;    ///< relative leakage current per gate at Vmin
};

/** Look up the characteristics table. */
NodeCharacteristics nodeCharacteristics(ProcessNode node);

/**
 * Scale factor for *dynamic* power of an equivalent design moved from
 * @p from to @p to: (C_to/C_from) * (V_to/V_from)^2 at equal frequency.
 */
double dynamicScale(ProcessNode from, ProcessNode to);

/**
 * Scale factor for *leakage* power of an equivalent design moved from
 * @p from to @p to: (I_to/I_from) * (V_to/V_from).
 */
double leakageScale(ProcessNode from, ProcessNode to);

/**
 * Scale a measured power composed of a leakage fraction and a dynamic
 * fraction (fractions must sum to <= 1; the remainder is treated as
 * node-independent board power).
 */
Milliwatts scaleMixedPower(Milliwatts measured, double leakage_fraction,
                           double dynamic_fraction, ProcessNode from,
                           ProcessNode to);

} // namespace odrips

#endif // ODRIPS_POWER_PROCESS_SCALING_HH
