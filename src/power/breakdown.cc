#include "power/breakdown.hh"

#include <algorithm>

namespace odrips
{

double
PowerBreakdown::groupShare(const std::string &group) const
{
    double sum = 0.0;
    for (const auto &e : entries) {
        if (e.group == group)
            sum += e.share;
    }
    return sum;
}

double
PowerBreakdown::componentShare(const std::string &component) const
{
    for (const auto &e : entries) {
        if (e.component == component)
            return e.share;
    }
    return 0.0;
}

stats::Table
PowerBreakdown::toTable(const std::string &title) const
{
    stats::Table table(title);
    table.setHeader({"component", "group", "rail power", "share"});

    std::vector<BreakdownEntry> sorted = entries;
    std::sort(sorted.begin(), sorted.end(),
              [](const BreakdownEntry &a, const BreakdownEntry &b) {
                  return a.battery > b.battery;
              });

    for (const auto &e : sorted) {
        if (e.nominal <= Milliwatts::zero())
            continue;
        table.addRow({e.component, e.group, stats::fmtPower(e.nominal),
                      stats::fmtPercent(e.share)});
    }
    table.addSeparator();
    table.addRow({"power delivery loss", "board",
                  stats::fmtPower(deliveryLoss),
                  stats::fmtPercent(totalBattery > Milliwatts::zero()
                                        ? deliveryLoss / totalBattery
                                        : 0.0)});
    table.addRow({"TOTAL (battery)", "", stats::fmtPower(totalBattery),
                  "100.0%"});
    return table;
}

PowerBreakdown
snapshotBreakdown(const PowerModel &model, const PowerDelivery &pd)
{
    PowerBreakdown bd;
    bd.totalNominal = model.totalPower();
    bd.totalBattery = pd.batteryPower(bd.totalNominal);
    bd.deliveryLoss = bd.totalBattery - bd.totalNominal;

    // Fig. 1(b) shows each component's rail-side power as a share of
    // the total battery power, with the power-delivery loss as its own
    // slice (26% at the paper's 74% DRIPS efficiency). Components keep
    // their nominal (rail-side) power; shares are taken against the
    // battery total so that component shares plus the loss share sum
    // to one.
    for (const PowerComponent *c : model.components()) {
        BreakdownEntry e;
        e.component = c->name();
        e.group = c->group();
        e.nominal = c->power();
        e.battery = c->power();
        e.share = bd.totalBattery > Milliwatts::zero()
                      ? e.nominal / bd.totalBattery
                      : 0.0;
        bd.entries.push_back(std::move(e));
    }
    return bd;
}

} // namespace odrips
