/**
 * @file
 * A power-consuming platform component.
 *
 * Each component reports a *nominal* (load-side) power draw that changes
 * piecewise over time as flows turn blocks on and off. The PowerModel
 * integrates these into per-component energies; the power-delivery model
 * converts nominal power into battery power.
 */

#ifndef ODRIPS_POWER_COMPONENT_HH
#define ODRIPS_POWER_COMPONENT_HH

#include <string>

#include "sim/named.hh"
#include "sim/ticks.hh"
#include "sim/units.hh"

namespace odrips
{

class PowerModel;

/** A component with a piecewise-constant nominal power draw. */
class PowerComponent : public Named
{
  public:
    /**
     * @param model the owning power model (registers automatically)
     * @param name  instance name
     * @param group reporting group ("processor", "chipset", "board",
     *              "memory") used by breakdown tables
     */
    PowerComponent(PowerModel &model, std::string name, std::string group);
    ~PowerComponent() override;

    PowerComponent(const PowerComponent &) = delete;
    PowerComponent &operator=(const PowerComponent &) = delete;

    /** Current nominal power. */
    Milliwatts power() const { return level; }

    /** Change the draw at time @p when (integrates history first). */
    void setPower(Milliwatts new_power, Tick when);

    /** Reporting group. */
    const std::string &group() const { return _group; }

    /** Energy consumed so far (up to the last integration). */
    Millijoules energy() const { return consumed; }

  private:
    friend class PowerModel;

    PowerModel &owner;
    std::string _group; // ckpt: skip(registration metadata, fixed at construction)
    Milliwatts level;
    Millijoules consumed;
    Tick lastUpdate = 0;
};

} // namespace odrips

#endif // ODRIPS_POWER_COMPONENT_HH
