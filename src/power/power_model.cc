#include "power/power_model.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace odrips
{

PowerComponent::PowerComponent(PowerModel &power_model, std::string name,
                               std::string group)
    : Named(std::move(name)), owner(power_model), _group(std::move(group))
{
    owner.registerComponent(this);
}

PowerComponent::~PowerComponent()
{
    owner.unregisterComponent(this);
}

void
PowerComponent::setPower(Milliwatts new_power, Tick when)
{
    ODRIPS_ASSERT(new_power >= Milliwatts::zero(), name(),
                  ": negative power");
    ODRIPS_ASSERT(when >= lastUpdate, name(), ": power change in the past");

    // Integrate the interval at the previous level.
    consumed += level * Seconds::fromTicks(when - lastUpdate);
    lastUpdate = when;

    owner.total += new_power - level;
    level = new_power;
    owner.notifyChange(when);
}

void
PowerModel::registerComponent(PowerComponent *c)
{
    comps.push_back(c);
    total += c->level;
}

void
PowerModel::unregisterComponent(PowerComponent *c)
{
    total -= c->level;
    std::erase(comps, c);
}

void
PowerModel::notifyChange(Tick when)
{
    for (auto &listener : listeners)
        listener(when, total);
}

void
PowerModel::advanceTo(Tick now)
{
    for (PowerComponent *c : comps) {
        ODRIPS_ASSERT(now >= c->lastUpdate,
                      "power model advanced into the past");
        c->consumed += c->level * Seconds::fromTicks(now - c->lastUpdate);
        c->lastUpdate = now;
    }
}

PowerComponent *
PowerModel::find(const std::string &name) const
{
    for (PowerComponent *c : comps) {
        if (c->name() == name)
            return c;
    }
    return nullptr;
}

Milliwatts
PowerModel::groupPower(const std::string &group) const
{
    Milliwatts sum;
    for (const PowerComponent *c : comps) {
        if (c->group() == group)
            sum += c->power();
    }
    return sum;
}

Millijoules
PowerModel::totalEnergy() const
{
    Millijoules sum;
    for (const PowerComponent *c : comps)
        sum += c->energy();
    return sum;
}

} // namespace odrips
