#include "power/power_model.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace odrips
{

PowerComponent::PowerComponent(PowerModel &model, std::string name,
                               std::string group)
    : Named(std::move(name)), model(model), _group(std::move(group))
{
    model.registerComponent(this);
}

PowerComponent::~PowerComponent()
{
    model.unregisterComponent(this);
}

void
PowerComponent::setPower(double new_watts, Tick when)
{
    ODRIPS_ASSERT(new_watts >= 0.0, name(), ": negative power");
    ODRIPS_ASSERT(when >= lastUpdate, name(), ": power change in the past");

    // Integrate the interval at the previous level.
    joules += watts * ticksToSeconds(when - lastUpdate);
    lastUpdate = when;

    model.total += new_watts - watts;
    watts = new_watts;
    model.notifyChange(when);
}

void
PowerModel::registerComponent(PowerComponent *c)
{
    comps.push_back(c);
    total += c->watts;
}

void
PowerModel::unregisterComponent(PowerComponent *c)
{
    total -= c->watts;
    std::erase(comps, c);
}

void
PowerModel::notifyChange(Tick when)
{
    for (auto &listener : listeners)
        listener(when, total);
}

void
PowerModel::advanceTo(Tick now)
{
    for (PowerComponent *c : comps) {
        ODRIPS_ASSERT(now >= c->lastUpdate,
                      "power model advanced into the past");
        c->joules += c->watts * ticksToSeconds(now - c->lastUpdate);
        c->lastUpdate = now;
    }
}

PowerComponent *
PowerModel::find(const std::string &name) const
{
    for (PowerComponent *c : comps) {
        if (c->name() == name)
            return c;
    }
    return nullptr;
}

double
PowerModel::groupPower(const std::string &group) const
{
    double sum = 0.0;
    for (const PowerComponent *c : comps) {
        if (c->group() == group)
            sum += c->power();
    }
    return sum;
}

double
PowerModel::totalEnergy() const
{
    double sum = 0.0;
    for (const PowerComponent *c : comps)
        sum += c->energy();
    return sum;
}

} // namespace odrips
