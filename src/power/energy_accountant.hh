/**
 * @file
 * Exact battery-energy integration.
 *
 * Listens to PowerModel changes and integrates battery power (nominal
 * power put through the PowerDelivery model) piecewise-exactly. This is
 * the analytic counterpart of the sampling PowerAnalyzer; tests check
 * the two agree.
 */

#ifndef ODRIPS_POWER_ENERGY_ACCOUNTANT_HH
#define ODRIPS_POWER_ENERGY_ACCOUNTANT_HH

#include "power/power_delivery.hh"
#include "power/power_model.hh"
#include "sim/ticks.hh"

namespace odrips
{

/** Integrates battery-side energy exactly across power changes. */
class EnergyAccountant
{
  public:
    EnergyAccountant(PowerModel &model, const PowerDelivery &delivery)
        : model(model), pd(delivery)
    {
        lastLoad = model.totalPower();
        model.addListener([this](Tick when, double new_total) {
            integrateTo(when);
            lastLoad = new_total;
        });
    }

    /** Integrate up to @p now (idempotent per tick). */
    void
    integrateTo(Tick now)
    {
        if (now <= lastTick) {
            return;
        }
        batteryJoules += pd.batteryPower(lastLoad)
                         * ticksToSeconds(now - lastTick);
        loadJoules += lastLoad * ticksToSeconds(now - lastTick);
        lastTick = now;
    }

    /** Restart accounting at @p now (energy counters cleared). */
    void
    reset(Tick now)
    {
        integrateTo(now);
        batteryJoules = 0.0;
        loadJoules = 0.0;
        startTick = now;
        lastTick = now;
        lastLoad = model.totalPower();
    }

    /** Battery energy in joules since the last reset. */
    double batteryEnergy() const { return batteryJoules; }

    /** Nominal (load-side) energy in joules since the last reset. */
    double loadEnergy() const { return loadJoules; }

    /** Average battery power over [reset, lastIntegration]. */
    double
    averageBatteryPower() const
    {
        const double secs = ticksToSeconds(lastTick - startTick);
        return secs > 0 ? batteryJoules / secs : 0.0;
    }

    /** Instantaneous battery power at the current load level. */
    double instantaneousBatteryPower() const
    {
        return pd.batteryPower(lastLoad);
    }

    Tick windowStart() const { return startTick; }
    Tick windowEnd() const { return lastTick; }

  private:
    PowerModel &model;
    const PowerDelivery &pd;
    double lastLoad = 0.0;
    double batteryJoules = 0.0;
    double loadJoules = 0.0;
    Tick lastTick = 0;
    Tick startTick = 0;
};

} // namespace odrips

#endif // ODRIPS_POWER_ENERGY_ACCOUNTANT_HH
