/**
 * @file
 * Exact battery-energy integration.
 *
 * Listens to PowerModel changes and integrates battery power (nominal
 * power put through the PowerDelivery model) piecewise-exactly. This is
 * the analytic counterpart of the sampling PowerAnalyzer; tests check
 * the two agree.
 */

#ifndef ODRIPS_POWER_ENERGY_ACCOUNTANT_HH
#define ODRIPS_POWER_ENERGY_ACCOUNTANT_HH

#include "power/power_delivery.hh"
#include "power/power_model.hh"
#include "sim/ticks.hh"
#include "sim/units.hh"

namespace odrips
{

/** Integrates battery-side energy exactly across power changes. */
class EnergyAccountant
{
  public:
    EnergyAccountant(PowerModel &power_model, const PowerDelivery &delivery)
        : model(power_model), pd(delivery)
    {
        lastLoad = model.totalPower();
        model.addListener([this](Tick when, Milliwatts new_total) {
            integrateTo(when);
            lastLoad = new_total;
        });
    }

    /** Integrate up to @p now (idempotent per tick). */
    void
    integrateTo(Tick now)
    {
        if (now <= lastTick) {
            return;
        }
        const Seconds dt = Seconds::fromTicks(now - lastTick);
        batteryTotal += pd.batteryPower(lastLoad) * dt;
        loadTotal += lastLoad * dt;
        lastTick = now;
    }

    /** Restart accounting at @p now (energy counters cleared). */
    void
    reset(Tick now)
    {
        integrateTo(now);
        batteryTotal = Millijoules::zero();
        loadTotal = Millijoules::zero();
        startTick = now;
        lastTick = now;
        lastLoad = model.totalPower();
    }

    /** Battery energy since the last reset. */
    Millijoules batteryEnergy() const { return batteryTotal; }

    /** Nominal (load-side) energy since the last reset. */
    Millijoules loadEnergy() const { return loadTotal; }

    /** Average battery power over [reset, lastIntegration]. */
    Milliwatts
    averageBatteryPower() const
    {
        const Seconds window = Seconds::fromTicks(lastTick - startTick);
        return window > Seconds(0.0) ? batteryTotal / window
                                     : Milliwatts::zero();
    }

    /** Instantaneous battery power at the current load level. */
    Milliwatts instantaneousBatteryPower() const
    {
        return pd.batteryPower(lastLoad);
    }

    Tick windowStart() const { return startTick; }
    Tick windowEnd() const { return lastTick; }

    /**
     * @name Checkpoint support
     * The listener registered at construction stays in place across a
     * restore (it captures `this`, and the accountant outlives every
     * snapshot operation); only the integration state is replaced.
     * @{
     */

    /** Load level the next integration interval will use. */
    Milliwatts lastLoadLevel() const { return lastLoad; }

    /** Restore the exact integration state captured by a snapshot. */
    void
    restoreState(Milliwatts last_load, Millijoules battery_total,
                 Millijoules load_total, Tick last_tick, Tick start_tick)
    {
        lastLoad = last_load;
        batteryTotal = battery_total;
        loadTotal = load_total;
        lastTick = last_tick;
        startTick = start_tick;
    }

    /** @} */

  private:
    PowerModel &model;
    const PowerDelivery &pd;
    Milliwatts lastLoad;
    Millijoules batteryTotal;
    Millijoules loadTotal;
    Tick lastTick = 0;
    Tick startTick = 0;
};

} // namespace odrips

#endif // ODRIPS_POWER_ENERGY_ACCOUNTANT_HH
