/**
 * @file
 * Platform power model: registry of PowerComponents plus exact
 * piecewise-constant energy integration.
 */

#ifndef ODRIPS_POWER_POWER_MODEL_HH
#define ODRIPS_POWER_POWER_MODEL_HH

#include <functional>
#include <string>
#include <vector>

#include "power/component.hh"
#include "sim/ticks.hh"
#include "sim/units.hh"

namespace odrips
{

/**
 * Aggregates all PowerComponents of a platform. Integration is exact:
 * every power change first integrates the elapsed interval at the old
 * level.
 */
class PowerModel
{
  public:
    PowerModel() = default;
    PowerModel(const PowerModel &) = delete;
    PowerModel &operator=(const PowerModel &) = delete;

    /** Sum of all components' current nominal power. */
    Milliwatts totalPower() const { return total; }

    /** Integrate all component energies up to @p now. */
    void advanceTo(Tick now);

    /** Registered components (stable order of registration). */
    const std::vector<PowerComponent *> &components() const
    {
        return comps;
    }

    /** Find a component by name; nullptr if absent. */
    PowerComponent *find(const std::string &name) const;

    /** Sum of current power over components in @p group. */
    Milliwatts groupPower(const std::string &group) const;

    /** Total integrated nominal energy (up to last advance). */
    Millijoules totalEnergy() const;

    /**
     * Observer invoked after any component changes power:
     * callback(now, new_total_nominal_power).
     */
    void
    addListener(std::function<void(Tick, Milliwatts)> listener)
    {
        listeners.push_back(std::move(listener));
    }

    /**
     * @name Checkpoint support
     * Component state is restored by registration index on a freshly
     * constructed platform (component identity and order are a pure
     * function of the configuration). Restore writes the raw fields
     * without firing listeners: the accountant's own state is restored
     * separately, so replaying notifications would double-count.
     * @{
     */

    /** Raw integration state of component @p index (for snapshot). */
    void
    componentState(std::size_t index, Milliwatts &level,
                   Millijoules &consumed, Tick &last_update) const
    {
        const PowerComponent &c = *comps.at(index);
        level = c.level;
        consumed = c.consumed;
        last_update = c.lastUpdate;
    }

    /** Restore the state captured by componentState(). */
    void
    restoreComponentState(std::size_t index, Milliwatts level,
                          Millijoules consumed, Tick last_update)
    {
        PowerComponent &c = *comps.at(index);
        c.level = level;
        c.consumed = consumed;
        c.lastUpdate = last_update;
    }

    /**
     * Restore the cached running total verbatim. The total is
     * maintained incrementally (+= delta per setPower), so it carries
     * rounding drift relative to a fresh sum of the levels; a restore
     * must reproduce the drifted value bit-exactly or the next
     * accountant update diverges from the captured simulator.
     */
    void restoreTotal(Milliwatts t) { total = t; }

    /** @} */

  private:
    friend class PowerComponent;

    void registerComponent(PowerComponent *c);
    void unregisterComponent(PowerComponent *c);
    void notifyChange(Tick when);

    std::vector<PowerComponent *> comps;
    std::vector<std::function<void(Tick, Milliwatts)>> listeners;
    Milliwatts total;
};

} // namespace odrips

#endif // ODRIPS_POWER_POWER_MODEL_HH
