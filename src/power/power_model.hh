/**
 * @file
 * Platform power model: registry of PowerComponents plus exact
 * piecewise-constant energy integration.
 */

#ifndef ODRIPS_POWER_POWER_MODEL_HH
#define ODRIPS_POWER_POWER_MODEL_HH

#include <functional>
#include <string>
#include <vector>

#include "power/component.hh"
#include "sim/ticks.hh"
#include "sim/units.hh"

namespace odrips
{

/**
 * Aggregates all PowerComponents of a platform. Integration is exact:
 * every power change first integrates the elapsed interval at the old
 * level.
 */
class PowerModel
{
  public:
    PowerModel() = default;
    PowerModel(const PowerModel &) = delete;
    PowerModel &operator=(const PowerModel &) = delete;

    /** Sum of all components' current nominal power. */
    Milliwatts totalPower() const { return total; }

    /** Integrate all component energies up to @p now. */
    void advanceTo(Tick now);

    /** Registered components (stable order of registration). */
    const std::vector<PowerComponent *> &components() const
    {
        return comps;
    }

    /** Find a component by name; nullptr if absent. */
    PowerComponent *find(const std::string &name) const;

    /** Sum of current power over components in @p group. */
    Milliwatts groupPower(const std::string &group) const;

    /** Total integrated nominal energy (up to last advance). */
    Millijoules totalEnergy() const;

    /**
     * Observer invoked after any component changes power:
     * callback(now, new_total_nominal_power).
     */
    void
    addListener(std::function<void(Tick, Milliwatts)> listener)
    {
        listeners.push_back(std::move(listener));
    }

  private:
    friend class PowerComponent;

    void registerComponent(PowerComponent *c);
    void unregisterComponent(PowerComponent *c);
    void notifyChange(Tick when);

    std::vector<PowerComponent *> comps;
    std::vector<std::function<void(Tick, Milliwatts)>> listeners;
    Milliwatts total;
};

} // namespace odrips

#endif // ODRIPS_POWER_POWER_MODEL_HH
