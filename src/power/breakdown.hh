/**
 * @file
 * Platform power breakdown reporting (used for Fig. 1(b)).
 */

#ifndef ODRIPS_POWER_BREAKDOWN_HH
#define ODRIPS_POWER_BREAKDOWN_HH

#include <string>
#include <vector>

#include "power/power_delivery.hh"
#include "power/power_model.hh"
#include "sim/units.hh"
#include "stats/report.hh"

namespace odrips
{

/** One row of a power-breakdown snapshot. */
struct BreakdownEntry
{
    std::string component;
    std::string group;
    /** Rail-side (nominal) power drawn by the component. */
    Milliwatts nominal;
    /** Same as nominal (kept for reporting symmetry). */
    Milliwatts battery;
    /** Share of total *battery* power; all component shares plus the
     * delivery-loss share sum to one (Fig. 1(b) convention). */
    double share;
};

/** Snapshot of the platform power breakdown at an instant. */
struct PowerBreakdown
{
    std::vector<BreakdownEntry> entries;
    Milliwatts totalNominal;
    Milliwatts totalBattery;
    Milliwatts deliveryLoss;

    /** Sum the battery share of all components in a group. */
    double groupShare(const std::string &group) const;

    /** Battery share of a single named component (0 if absent). */
    double componentShare(const std::string &component) const;

    /** Render as a table (sorted by descending battery power). */
    stats::Table toTable(const std::string &title) const;
};

/** Take a breakdown snapshot of the model's current power levels. */
PowerBreakdown snapshotBreakdown(const PowerModel &model,
                                 const PowerDelivery &pd);

} // namespace odrips

#endif // ODRIPS_POWER_BREAKDOWN_HH
