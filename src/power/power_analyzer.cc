#include "power/power_analyzer.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace odrips
{

PowerAnalyzer::PowerAnalyzer(std::string name, EventQueue &event_queue,
                             Tick sample_interval)
    : SimObject(std::move(name), event_queue), interval(sample_interval),
      sampling(this->name() + ".sample", [this] { takeSample(); },
               Event::statsPriority)
{
    ODRIPS_ASSERT(sample_interval > 0, "sample interval must be positive");
}

std::size_t
PowerAnalyzer::addChannel(std::string label, std::function<Milliwatts()> probe)
{
    if (channels.size() >= 4) {
        warn(name(), ": more than four channels configured; a real "
                     "N6705B mainframe has four slots");
    }
    channels.push_back(AnalyzerChannel{std::move(label), std::move(probe),
                                       0, {}, {}, {}, {}});
    return channels.size() - 1;
}

void
PowerAnalyzer::arm()
{
    if (!sampling.scheduled())
        eq.scheduleAfter(sampling, interval);
}

void
PowerAnalyzer::disarm()
{
    if (sampling.scheduled())
        eq.deschedule(sampling);
}

void
PowerAnalyzer::enableTrace(bool enable)
{
    tracing = enable;
    if (!enable)
        return;
    // Reserve up front: a multi-second run at the 50 us interval takes
    // tens of thousands of samples per channel, and growing the traces
    // sample by sample reallocates inside the event loop.
    constexpr std::size_t reserveHint = 4096;
    for (auto &ch : channels)
        ch.trace.reserve(std::min(traceCap, reserveHint));
}

void
PowerAnalyzer::setTraceLimit(std::size_t max_samples)
{
    ODRIPS_ASSERT(max_samples >= 2,
                  name(), ": trace limit must be at least 2");
    traceCap = max_samples;
}

void
PowerAnalyzer::clear()
{
    for (auto &ch : channels) {
        ch.samples = 0;
        ch.sum = Milliwatts::zero();
        ch.minSample = Milliwatts::zero();
        ch.maxSample = Milliwatts::zero();
        ch.trace.clear();
    }
    traceStride = 1;
    traceSkip = 0;
}

const AnalyzerChannel &
PowerAnalyzer::channel(std::size_t index) const
{
    ODRIPS_ASSERT(index < channels.size(), name(), ": bad channel index");
    return channels[index];
}

void
PowerAnalyzer::saveState(ckpt::Writer &w) const
{
    w.u64(channels.size());
    for (const auto &ch : channels) {
        w.u64(ch.samples);
        w.f64(ch.sum.watts());
        w.f64(ch.minSample.watts());
        w.f64(ch.maxSample.watts());
        w.u64(ch.trace.size());
        for (const auto &[tick, value] : ch.trace) {
            w.i64(tick);
            w.f64(value.watts());
        }
    }
    w.b(tracing);
    w.u64(traceCap);
    w.u64(traceStride);
    w.u64(traceSkip);
    w.b(sampling.scheduled());
    if (sampling.scheduled()) {
        w.i64(sampling.when());
        w.u64(EventQueue::sequenceOf(sampling));
    }
}

void
PowerAnalyzer::loadState(ckpt::Reader &r)
{
    const std::uint64_t count = r.u64();
    if (count != channels.size())
        throw ckpt::SnapshotError("analyzer channel count mismatch");
    for (auto &ch : channels) {
        ch.samples = r.u64();
        ch.sum = Milliwatts::fromWatts(r.f64());
        ch.minSample = Milliwatts::fromWatts(r.f64());
        ch.maxSample = Milliwatts::fromWatts(r.f64());
        const std::uint64_t entries = r.u64();
        ch.trace.clear();
        ch.trace.reserve(entries);
        for (std::uint64_t i = 0; i < entries; ++i) {
            const Tick tick = r.i64();
            ch.trace.emplace_back(tick, Milliwatts::fromWatts(r.f64()));
        }
    }
    tracing = r.b();
    traceCap = r.u64();
    traceStride = r.u64();
    traceSkip = r.u64();
    if (sampling.scheduled())
        eq.deschedule(sampling);
    if (r.b()) {
        const Tick when = r.i64();
        const std::uint64_t sequence = r.u64();
        eq.restoreSchedule(sampling, when, sequence);
    }
}

void
PowerAnalyzer::decimateTraces()
{
    for (auto &ch : channels) {
        std::size_t keep = 0;
        for (std::size_t i = 0; i < ch.trace.size(); i += 2)
            ch.trace[keep++] = ch.trace[i];
        ch.trace.resize(keep);
    }
    traceStride *= 2;
    // The last retained sample sat on an even index; the next one
    // belongs a full (doubled) stride after it.
    traceSkip = traceStride - 1;
    warn(name(), ": power trace reached ", traceCap,
         " samples per channel; decimating 2x (one trace entry every ",
         traceStride, " samples from here)");
}

void
PowerAnalyzer::takeSample()
{
    // Channels sample in lockstep, so one stride decision covers all
    // of them. Statistics below are unaffected by trace decimation.
    bool record = false;
    if (tracing) {
        if (traceSkip == 0) {
            record = true;
            traceSkip = traceStride - 1;
        } else {
            --traceSkip;
        }
    }

    for (auto &ch : channels) {
        const Milliwatts value = ch.probe();
        if (ch.samples == 0) {
            ch.minSample = value;
            ch.maxSample = value;
        } else {
            ch.minSample = std::min(ch.minSample, value);
            ch.maxSample = std::max(ch.maxSample, value);
        }
        ch.sum += value;
        ++ch.samples;
        if (record)
            ch.trace.emplace_back(now(), value);
    }

    if (record && !channels.empty() &&
        channels.front().trace.size() >= traceCap)
        decimateTraces();

    eq.scheduleAfter(sampling, interval);
}

} // namespace odrips
