#include "power/power_analyzer.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace odrips
{

PowerAnalyzer::PowerAnalyzer(std::string name, EventQueue &event_queue,
                             Tick sample_interval)
    : SimObject(std::move(name), event_queue), interval(sample_interval),
      sampling(this->name() + ".sample", [this] { takeSample(); },
               Event::statsPriority)
{
    ODRIPS_ASSERT(sample_interval > 0, "sample interval must be positive");
}

std::size_t
PowerAnalyzer::addChannel(std::string label, std::function<Milliwatts()> probe)
{
    if (channels.size() >= 4) {
        warn(name(), ": more than four channels configured; a real "
                     "N6705B mainframe has four slots");
    }
    channels.push_back(AnalyzerChannel{std::move(label), std::move(probe),
                                       0, {}, {}, {}, {}});
    return channels.size() - 1;
}

void
PowerAnalyzer::arm()
{
    if (!sampling.scheduled())
        eq.scheduleAfter(sampling, interval);
}

void
PowerAnalyzer::disarm()
{
    if (sampling.scheduled())
        eq.deschedule(sampling);
}

void
PowerAnalyzer::clear()
{
    for (auto &ch : channels) {
        ch.samples = 0;
        ch.sum = Milliwatts::zero();
        ch.minSample = Milliwatts::zero();
        ch.maxSample = Milliwatts::zero();
        ch.trace.clear();
    }
}

const AnalyzerChannel &
PowerAnalyzer::channel(std::size_t index) const
{
    ODRIPS_ASSERT(index < channels.size(), name(), ": bad channel index");
    return channels[index];
}

void
PowerAnalyzer::takeSample()
{
    for (auto &ch : channels) {
        const Milliwatts value = ch.probe();
        if (ch.samples == 0) {
            ch.minSample = value;
            ch.maxSample = value;
        } else {
            ch.minSample = std::min(ch.minSample, value);
            ch.maxSample = std::max(ch.maxSample, value);
        }
        ch.sum += value;
        ++ch.samples;
        if (tracing)
            ch.trace.emplace_back(now(), value);
    }
    eq.scheduleAfter(sampling, interval);
}

} // namespace odrips
