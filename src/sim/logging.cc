#include "sim/logging.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace odrips
{

namespace
{

// Atomic so that worker threads of the parallel sweep runner can log
// while the main thread flips the flags (benign, but a TSan report).
std::atomic<bool> throwOnErrorFlag{false};
std::atomic<bool> quietFlag{false};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

} // namespace

void
Logger::throwOnError(bool enable)
{
    throwOnErrorFlag = enable;
}

void
Logger::quiet(bool enable)
{
    quietFlag = enable;
}

bool
Logger::throwing()
{
    return throwOnErrorFlag;
}

void
Logger::log(LogLevel level, const std::string &where,
            const std::string &message)
{
    const bool is_error =
        level == LogLevel::Fatal || level == LogLevel::Panic;

    // In throwing (test/CLI) mode the catcher reports the error; do
    // not print it twice.
    if (is_error && throwOnErrorFlag)
        throw SimError(level, message);

    if (!quietFlag || is_error) {
        std::ostream &os = is_error ? std::cerr : std::cout;
        os << levelName(level) << ": ";
        if (!where.empty())
            os << where << ": ";
        os << message << std::endl;
    }

    if (is_error) {
        if (throwOnErrorFlag)
            throw SimError(level, message);
        if (level == LogLevel::Panic)
            std::abort();
        std::exit(1);
    }
}

} // namespace odrips
