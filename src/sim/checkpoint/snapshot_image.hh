/**
 * @file
 * Versioned container for serialized simulator state.
 *
 * A SnapshotImage is an ordered list of named byte sections with a
 * fixed header:
 *
 *     u32 magic   'ODRP' (0x5052444f little-endian on disk)
 *     u32 schema  format version (currently 1)
 *     u64 config  low half of the ProfileKey content hash
 *     u64 config  high half of the ProfileKey content hash
 *     u32 count   number of sections
 *     then per section:
 *         str  name
 *         u32  crc32 of the payload
 *         blob payload
 *
 * Each section carries its own CRC so corruption is pinned to a section
 * and detected before any state is applied. Deserialization validates
 * magic, schema, every CRC, and exact length; any failure throws
 * ckpt::SnapshotError and leaves no partially-restored state behind
 * (restore only begins after the whole image validates).
 */

#ifndef ODRIPS_SIM_CHECKPOINT_SNAPSHOT_IMAGE_HH
#define ODRIPS_SIM_CHECKPOINT_SNAPSHOT_IMAGE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/checkpoint/serializer.hh"

namespace odrips
{
namespace ckpt
{

/** One named, CRC-protected state section. */
struct SnapshotSection
{
    std::string name;
    std::vector<std::uint8_t> payload;
};

class SnapshotImage
{
  public:
    static constexpr std::uint32_t magic = 0x5052444fu; // "ODRP"
    static constexpr std::uint32_t schemaVersion = 1;

    /** 128-bit configuration hash stamped into the header. */
    struct ConfigTag
    {
        std::uint64_t lo = 0;
        std::uint64_t hi = 0;

        bool
        operator==(const ConfigTag &o) const
        {
            return lo == o.lo && hi == o.hi;
        }
    };

    void setConfigTag(ConfigTag tag) { tag_ = tag; }
    ConfigTag configTag() const { return tag_; }

    /** Append a section; names must be unique within an image. */
    void addSection(std::string name, std::vector<std::uint8_t> payload);

    /** Look up a section payload; throws SnapshotError if missing. */
    const std::vector<std::uint8_t> &section(const std::string &name) const;

    bool hasSection(const std::string &name) const;

    const std::vector<SnapshotSection> &sections() const
    {
        return sections_;
    }

    /** Encode the full image, including header and per-section CRCs. */
    std::vector<std::uint8_t> serialize() const;

    /** Decode and fully validate an image; throws SnapshotError. */
    static SnapshotImage deserialize(const std::uint8_t *data,
                                     std::size_t size);

    static SnapshotImage
    deserialize(const std::vector<std::uint8_t> &buf)
    {
        return deserialize(buf.data(), buf.size());
    }

    /** Write the serialized image to @p path (throws SnapshotError). */
    void writeFile(const std::string &path) const;

    /** Read and validate an image from @p path (throws SnapshotError). */
    static SnapshotImage readFile(const std::string &path);

  private:
    ConfigTag tag_;
    std::vector<SnapshotSection> sections_;
};

} // namespace ckpt
} // namespace odrips

#endif // ODRIPS_SIM_CHECKPOINT_SNAPSHOT_IMAGE_HH
