/**
 * @file
 * Bounds-checked byte-stream serializer for simulator snapshots.
 *
 * The checkpoint subsystem (ROADMAP item 4) serializes the full simulator
 * state into named sections; this header provides the primitive encoding
 * layer. All multi-byte values are little-endian and fixed-width so the
 * on-disk format is stable across hosts; doubles round-trip exactly via
 * their IEEE-754 bit pattern.
 *
 * Reader never reads past the end of its buffer: every accessor throws
 * SnapshotError on underflow, so a truncated or corrupted snapshot can
 * never turn into undefined behaviour.
 */

#ifndef ODRIPS_SIM_CHECKPOINT_SERIALIZER_HH
#define ODRIPS_SIM_CHECKPOINT_SERIALIZER_HH

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace odrips
{
namespace ckpt
{

/** Raised on any malformed, truncated, or corrupted snapshot input. */
class SnapshotError : public std::runtime_error
{
  public:
    explicit SnapshotError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** CRC-32 (IEEE 802.3 polynomial, reflected) over a byte range. */
std::uint32_t crc32(const std::uint8_t *data, std::size_t size);

/** Append-only little-endian encoder. */
class Writer
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf.push_back(v);
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    i64(std::int64_t v)
    {
        u64(static_cast<std::uint64_t>(v));
    }

    void
    f64(double v)
    {
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double");
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    b(bool v)
    {
        u8(v ? 1 : 0);
    }

    /** Raw bytes with no length prefix (caller knows the size). */
    void
    bytes(const void *data, std::size_t size)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        buf.insert(buf.end(), p, p + size);
    }

    /** Length-prefixed byte vector. */
    void
    blob(const std::vector<std::uint8_t> &v)
    {
        u64(v.size());
        bytes(v.data(), v.size());
    }

    /** Length-prefixed UTF-8 string. */
    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    const std::vector<std::uint8_t> &data() const { return buf; }
    std::vector<std::uint8_t> take() { return std::move(buf); }
    std::size_t size() const { return buf.size(); }

  private:
    std::vector<std::uint8_t> buf;
};

/** Bounds-checked little-endian decoder over a borrowed buffer. */
class Reader
{
  public:
    Reader(const std::uint8_t *data, std::size_t size)
        : base(data), end(data + size), cur(data)
    {}

    explicit Reader(const std::vector<std::uint8_t> &v)
        : Reader(v.data(), v.size())
    {}

    std::uint8_t
    u8()
    {
        need(1, "u8");
        return *cur++;
    }

    std::uint32_t
    u32()
    {
        need(4, "u32");
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(*cur++) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8, "u64");
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(*cur++) << (8 * i);
        return v;
    }

    std::int64_t
    i64()
    {
        return static_cast<std::int64_t>(u64());
    }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    bool
    b()
    {
        const std::uint8_t v = u8();
        if (v > 1)
            throw SnapshotError("snapshot bool out of range");
        return v != 0;
    }

    void
    bytes(void *out, std::size_t size)
    {
        need(size, "bytes");
        std::memcpy(out, cur, size);
        cur += size;
    }

    std::vector<std::uint8_t>
    blob()
    {
        const std::uint64_t n = u64();
        need(n, "blob");
        std::vector<std::uint8_t> v(cur, cur + n);
        cur += n;
        return v;
    }

    std::string
    str()
    {
        const std::uint64_t n = u64();
        need(n, "str");
        std::string s(reinterpret_cast<const char *>(cur), n);
        cur += n;
        return s;
    }

    std::size_t remaining() const
    {
        return static_cast<std::size_t>(end - cur);
    }

    std::size_t consumed() const
    {
        return static_cast<std::size_t>(cur - base);
    }

    /** Assert the section was consumed exactly (catches schema drift). */
    void
    expectEnd(const char *what) const
    {
        if (cur != end)
            throw SnapshotError(std::string("trailing bytes in snapshot "
                                            "section ") + what);
    }

  private:
    void
    need(std::uint64_t n, const char *what) const
    {
        if (n > remaining())
            throw SnapshotError(std::string("snapshot truncated reading ")
                                + what);
    }

    const std::uint8_t *base;
    const std::uint8_t *end;
    const std::uint8_t *cur;
};

} // namespace ckpt
} // namespace odrips

#endif // ODRIPS_SIM_CHECKPOINT_SERIALIZER_HH
