#include "sim/checkpoint/snapshot_image.hh"

#include <array>
#include <cstdio>

namespace odrips
{
namespace ckpt
{

namespace
{

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t size)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    std::uint32_t c = 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i)
        c = table[(c ^ data[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

void
SnapshotImage::addSection(std::string name,
                          std::vector<std::uint8_t> payload)
{
    if (hasSection(name))
        throw SnapshotError("duplicate snapshot section " + name);
    sections_.push_back({std::move(name), std::move(payload)});
}

const std::vector<std::uint8_t> &
SnapshotImage::section(const std::string &name) const
{
    for (const auto &s : sections_) {
        if (s.name == name)
            return s.payload;
    }
    throw SnapshotError("missing snapshot section " + name);
}

bool
SnapshotImage::hasSection(const std::string &name) const
{
    for (const auto &s : sections_) {
        if (s.name == name)
            return true;
    }
    return false;
}

std::vector<std::uint8_t>
SnapshotImage::serialize() const
{
    Writer w;
    w.u32(magic);
    w.u32(schemaVersion);
    w.u64(tag_.lo);
    w.u64(tag_.hi);
    w.u32(static_cast<std::uint32_t>(sections_.size()));
    for (const auto &s : sections_) {
        w.str(s.name);
        w.u32(crc32(s.payload.data(), s.payload.size()));
        w.blob(s.payload);
    }
    return w.take();
}

SnapshotImage
SnapshotImage::deserialize(const std::uint8_t *data, std::size_t size)
{
    Reader r(data, size);
    if (r.u32() != magic)
        throw SnapshotError("bad snapshot magic");
    const std::uint32_t schema = r.u32();
    if (schema != schemaVersion)
        throw SnapshotError("unsupported snapshot schema version "
                            + std::to_string(schema));
    SnapshotImage image;
    image.tag_.lo = r.u64();
    image.tag_.hi = r.u64();
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
        SnapshotSection s;
        s.name = r.str();
        if (s.name.empty())
            throw SnapshotError("empty snapshot section name");
        const std::uint32_t storedCrc = r.u32();
        s.payload = r.blob();
        const std::uint32_t actual =
            crc32(s.payload.data(), s.payload.size());
        if (actual != storedCrc)
            throw SnapshotError("snapshot section " + s.name
                                + " failed CRC check");
        if (image.hasSection(s.name))
            throw SnapshotError("duplicate snapshot section " + s.name);
        image.sections_.push_back(std::move(s));
    }
    r.expectEnd("image");
    return image;
}

void
SnapshotImage::writeFile(const std::string &path) const
{
    const std::vector<std::uint8_t> buf = serialize();
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        throw SnapshotError("cannot open snapshot file for writing: "
                            + path);
    const std::size_t written =
        buf.empty() ? 0 : std::fwrite(buf.data(), 1, buf.size(), f);
    const bool ok = (written == buf.size()) && std::fclose(f) == 0;
    if (!ok)
        throw SnapshotError("short write to snapshot file: " + path);
}

SnapshotImage
SnapshotImage::readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw SnapshotError("cannot open snapshot file: " + path);
    std::vector<std::uint8_t> buf;
    std::array<std::uint8_t, 65536> chunk;
    std::size_t n = 0;
    while ((n = std::fread(chunk.data(), 1, chunk.size(), f)) > 0)
        buf.insert(buf.end(), chunk.begin(), chunk.begin() + n);
    const bool readError = std::ferror(f) != 0;
    std::fclose(f);
    if (readError)
        throw SnapshotError("I/O error reading snapshot file: " + path);
    return deserialize(buf);
}

} // namespace ckpt
} // namespace odrips
