/**
 * @file
 * Deterministic pseudo-random number generation for workloads.
 *
 * Implements xoshiro256** (public-domain algorithm by Blackman & Vigna),
 * seeded with splitmix64 so that a single 64-bit seed fully determines a
 * simulation. Workload randomness must never come from std::random_device
 * so that experiments replay exactly.
 */

#ifndef ODRIPS_SIM_RANDOM_HH
#define ODRIPS_SIM_RANDOM_HH

#include <array>
#include <cstdint>

namespace odrips
{

/** Deterministic 64-bit PRNG (xoshiro256**). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x0d219500d219ULL) { reseed(seed); }

    /** Reset the generator state from a 64-bit seed. */
    void reseed(std::uint64_t seed);

    /**
     * Split off the @p index-th child stream.
     *
     * The child's state is derived by hashing the parent's *current*
     * state together with @p index (splitmix64 chain), so:
     *  - forks are reproducible: the same parent state and index always
     *    yield the same stream, on every platform;
     *  - streams are decorrelated across indices;
     *  - the parent is not advanced (const), so a sweep can fork point
     *    streams in any order — or concurrently — with identical
     *    results.
     *
     * This is what gives the parallel sweep runner per-point RNG
     * streams that are bit-identical to the serial path.
     */
    Rng fork(std::uint64_t index) const;

    /** Next raw 64-bit value. */
    std::uint64_t next64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, bound). @p bound must be > 0. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Exponentially distributed value with the given mean. */
    double exponential(double mean);

    /** Standard normal via Box-Muller (deterministic, no cache). */
    double normal(double mean, double stddev);

    /** Bernoulli trial with probability @p p of true. */
    bool chance(double p) { return uniform() < p; }

    /** Raw generator state, for snapshot/restore (sim/checkpoint). */
    std::array<std::uint64_t, 4>
    stateWords() const
    {
        return {s[0], s[1], s[2], s[3]};
    }

    /** Restore the exact generator state captured by stateWords(). */
    void
    setStateWords(const std::array<std::uint64_t, 4> &words)
    {
        s[0] = words[0];
        s[1] = words[1];
        s[2] = words[2];
        s[3] = words[3];
    }

  private:
    std::uint64_t s[4];
};

} // namespace odrips

#endif // ODRIPS_SIM_RANDOM_HH
