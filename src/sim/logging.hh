/**
 * @file
 * Logging and error-reporting helpers in the style used by mainstream
 * architecture simulators.
 *
 *  - panic():  an internal simulator invariant was violated (a bug in the
 *              simulator itself). Aborts.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, invalid arguments). Exits with code 1.
 *  - warn():   something may be modelled imprecisely but the simulation
 *              can continue.
 *  - inform(): a status message with no connotation of incorrectness.
 */

#ifndef ODRIPS_SIM_LOGGING_HH
#define ODRIPS_SIM_LOGGING_HH

#include <sstream>
#include <string>

namespace odrips
{

/** Severity of a log message. */
enum class LogLevel
{
    Inform,
    Warn,
    Fatal,
    Panic,
};

/**
 * Global logging configuration. Tests use this to silence warnings or to
 * turn fatal()/panic() into exceptions that can be asserted on.
 */
class Logger
{
  public:
    /** If true, fatal()/panic() throw instead of terminating (for tests). */
    static void throwOnError(bool enable);
    /** If true, warn()/inform() messages are suppressed. */
    static void quiet(bool enable);

    /** Emit a message; terminates (or throws) on Fatal/Panic. */
    [[gnu::cold]] static void log(LogLevel level, const std::string &where,
                                  const std::string &message);

    static bool throwing();
};

/** Exception thrown by fatal()/panic() in throwing mode. */
class SimError : public std::runtime_error
{
  public:
    SimError(LogLevel error_level, const std::string &what)
        : std::runtime_error(what), level(error_level)
    {}

    const LogLevel level;
};

namespace detail
{

template <typename... Args>
std::string
formatParts(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Report an internal simulator bug and abort (or throw in test mode). */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    Logger::log(LogLevel::Panic, "", detail::formatParts(args...));
    // log() does not return for Panic unless throwing, in which case a
    // SimError propagates; keep the compiler happy either way.
    throw SimError(LogLevel::Panic, "unreachable");
}

/** Report an unrecoverable user/configuration error. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    Logger::log(LogLevel::Fatal, "", detail::formatParts(args...));
    throw SimError(LogLevel::Fatal, "unreachable");
}

/** Report a suspicious but survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    Logger::log(LogLevel::Warn, "", detail::formatParts(args...));
}

/** Report simulation status. */
template <typename... Args>
void
inform(Args &&...args)
{
    Logger::log(LogLevel::Inform, "", detail::formatParts(args...));
}

/** panic() unless the given condition holds. */
#define ODRIPS_ASSERT(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::odrips::panic("assertion '" #cond "' failed: ",               \
                            ##__VA_ARGS__);                                 \
        }                                                                   \
    } while (0)

} // namespace odrips

#endif // ODRIPS_SIM_LOGGING_HH
