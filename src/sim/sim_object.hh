/**
 * @file
 * Base class for simulated hardware/firmware components.
 *
 * A SimObject has a hierarchical name and a reference to the event queue
 * that drives it. Components derive from SimObject and schedule Events on
 * the shared queue.
 */

#ifndef ODRIPS_SIM_SIM_OBJECT_HH
#define ODRIPS_SIM_SIM_OBJECT_HH

#include "sim/event_queue.hh"
#include "sim/named.hh"
#include "sim/ticks.hh"

namespace odrips
{

/** Base class for every simulated component. */
class SimObject : public Named
{
  public:
    SimObject(std::string name, EventQueue &event_queue)
        : Named(std::move(name)), eq(event_queue)
    {}

    /** The event queue driving this object. */
    EventQueue &eventQueue() const { return eq; }

    /** Current simulated time. */
    Tick now() const { return eq.now(); }

  protected:
    EventQueue &eq;
};

} // namespace odrips

#endif // ODRIPS_SIM_SIM_OBJECT_HH
