/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The EventQueue holds events ordered by (when, priority, sequence) and
 * executes them in order, advancing the global simulated time. Events are
 * lightweight callbacks; SimObjects schedule member-function events.
 */

#ifndef ODRIPS_SIM_EVENT_QUEUE_HH
#define ODRIPS_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace odrips
{

class EventQueue;

/**
 * A schedulable event. An Event object is owned by its creator and can be
 * (re)scheduled on an EventQueue; the queue holds non-owning references.
 */
class Event
{
  public:
    /** Events at the same tick execute in increasing priority order. */
    using Priority = int;

    /** Default priority for ordinary model events. */
    static constexpr Priority defaultPriority = 0;
    /** Statistics / measurement events run after model events. */
    static constexpr Priority statsPriority = 100;

    Event(std::string name, std::function<void()> cb,
          Priority priority = defaultPriority)
        : _name(std::move(name)), callback(std::move(cb)),
          _priority(priority)
    {}

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    ~Event();

    const std::string &name() const { return _name; }
    Priority priority() const { return _priority; }

    /** True if the event is currently in a queue. */
    bool scheduled() const { return _scheduled; }

    /** Tick at which the event will fire (valid only when scheduled). */
    Tick when() const { return _when; }

  private:
    friend class EventQueue;

    std::string _name;
    std::function<void()> callback;
    Priority _priority;
    bool _scheduled = false;
    bool cancelled = false;
    Tick _when = 0;
    std::uint64_t sequence = 0;
    EventQueue *queue = nullptr;
};

/**
 * The event queue: a priority queue of events plus the simulated-time
 * cursor. A single queue drives a whole platform simulation.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p event at absolute time @p when.
     * Scheduling in the past (or an already scheduled event) is a bug.
     */
    void schedule(Event &event, Tick when);

    /** Schedule @p event @p delay ticks from now. */
    void scheduleAfter(Event &event, Tick delay)
    {
        schedule(event, _now + delay);
    }

    /** Remove a scheduled event from the queue. */
    void deschedule(Event &event);

    /** Deschedule (if scheduled) and reschedule at @p when. */
    void reschedule(Event &event, Tick when);

    /** True if any event is pending. */
    bool empty() const { return liveCount == 0; }

    /** Number of pending (non-cancelled) events. */
    std::size_t size() const { return liveCount; }

    /** Tick of the next pending event; maxTick if none. */
    Tick nextEventTick() const;

    /**
     * Run events until the queue is empty or the next event lies beyond
     * @p limit. Time advances to the tick of each executed event and
     * finally to @p limit (if given and not maxTick).
     *
     * @return number of events executed.
     */
    std::uint64_t run(Tick limit = maxTick);

    /** Execute exactly one event (if any); @return true if one ran. */
    bool step();

    /** Total number of events executed so far. */
    std::uint64_t executedEvents() const { return executed; }

    /**
     * Advance the time cursor without running events; used by drivers
     * that integrate power over idle stretches. It is a bug to skip over
     * a pending event.
     */
    void advanceTo(Tick when);

  private:
    struct QueueEntry
    {
        Tick when;
        Event::Priority priority;
        std::uint64_t sequence;
        Event *event;
    };

    struct EntryCompare
    {
        bool
        operator()(const QueueEntry &a, const QueueEntry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.sequence > b.sequence;
        }
    };

    std::priority_queue<QueueEntry, std::vector<QueueEntry>, EntryCompare>
        entries;

    Tick _now = 0;
    std::uint64_t nextSequence = 0;
    std::uint64_t executed = 0;
    std::size_t liveCount = 0;

    /** Pop cancelled entries off the head of the queue. */
    void skipCancelled();
};

} // namespace odrips

#endif // ODRIPS_SIM_EVENT_QUEUE_HH
