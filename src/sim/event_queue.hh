/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The EventQueue holds events ordered by (when, priority, sequence) and
 * executes them in order, advancing the global simulated time. Events
 * are lightweight callbacks; SimObjects schedule member-function
 * events.
 *
 * The queue is an intrusive, indexed 4-ary min-heap: each scheduled
 * Event carries its own heap slot, so deschedule and reschedule fix the
 * heap in place instead of leaving cancelled tombstones behind (the
 * historical lazy-cancel design grew without bound under periodic
 * reschedule). No per-event allocation happens on the hot path — names
 * are lazy `const char *` pointers for literals, callbacks live in a
 * fixed inline buffer, and the heap array is reused across events. See
 * DESIGN.md, "Kernel internals & performance".
 */

#ifndef ODRIPS_SIM_EVENT_QUEUE_HH
#define ODRIPS_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_callback.hh"
#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace odrips
{

class EventQueue;

/**
 * A schedulable event. An Event object is owned by its creator and can
 * be (re)scheduled on an EventQueue; the queue holds non-owning
 * pointers.
 */
class Event
{
  public:
    /** Events at the same tick execute in increasing priority order. */
    using Priority = int;

    /** Default priority for ordinary model events. */
    static constexpr Priority defaultPriority = 0;
    /** Statistics / measurement events run after model events. */
    static constexpr Priority statsPriority = 100;

    /**
     * Construct from a string literal (or other static string): the
     * pointer is kept as-is, no copy, no allocation.
     */
    template <typename F>
    Event(const char *name, F &&cb, Priority priority = defaultPriority)
        : callback(std::forward<F>(cb)), _name(name), _priority(priority)
    {}

    /** Construct from a dynamically built name (owned by the event). */
    template <typename F>
    Event(std::string name, F &&cb, Priority priority = defaultPriority)
        : callback(std::forward<F>(cb)), _ownedName(std::move(name)),
          _name(_ownedName.c_str()), _priority(priority)
    {}

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    ~Event();

    const char *name() const { return _name; }
    Priority priority() const { return _priority; }

    /** True if the event is currently in a queue. */
    bool scheduled() const { return queue != nullptr; }

    /** Tick at which the event will fire (valid only when scheduled). */
    Tick when() const { return _when; }

  private:
    friend class EventQueue;

    EventCallback callback; // ckpt: skip(owners re-schedule their events on restore)
    std::string _ownedName; // ckpt: skip(owners re-schedule their events on restore)
    const char *_name;
    Priority _priority; // ckpt: skip(owners re-schedule their events on restore)
    Tick _when = 0;
    std::uint64_t sequence = 0;
    /** Owning queue while scheduled; nullptr otherwise. */
    EventQueue *queue = nullptr;
    /** Slot in the owning queue's heap (valid while scheduled). */
    std::size_t heapIndex = 0; // ckpt: skip(heap bookkeeping, rebuilt on insert)
};

/**
 * The event queue: an indexed min-heap of events plus the
 * simulated-time cursor. A single queue drives a whole platform
 * simulation.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p event at absolute time @p when.
     * Scheduling in the past (or an already scheduled event) is a bug.
     */
    void
    schedule(Event &event, Tick when)
    {
        if (event.scheduled() || when < _now) [[unlikely]]
            schedulePanic(event, when);
        event._when = when;
        event.sequence = nextSequence++;
        event.queue = this;
        const std::size_t index = heap.size();
        event.heapIndex = index;
        heap.push_back(&event);
        if (index > 0)
            siftUp(index);
    }

    /** Schedule @p event @p delay ticks from now. A delay that would
     * overflow the tick counter is a bug (panics). */
    void
    scheduleAfter(Event &event, Tick delay)
    {
        if (delay > maxTick - _now) [[unlikely]]
            overflowPanic(event, delay);
        schedule(event, _now + delay);
    }

    /** Remove a scheduled event from the queue (in place, O(log n)). */
    void deschedule(Event &event);

    /** Deschedule (if scheduled) and reschedule at @p when. */
    void reschedule(Event &event, Tick when);

    /** True if any event is pending. */
    bool empty() const { return heap.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap.size(); }

    /**
     * Internal entry count. Equal to size() by construction — the
     * indexed heap removes cancelled entries eagerly, so rescheduling
     * cannot accumulate tombstones. Kept distinct from size() so the
     * regression suite can pin the no-accumulation property.
     */
    std::size_t internalEntries() const { return heap.size(); }

    /** Tick of the next pending event; maxTick if none. */
    Tick
    nextEventTick() const
    {
        return heap.empty() ? maxTick : heap.front()->_when;
    }

    /**
     * Run events until the queue is empty or the next event lies beyond
     * @p limit. Time advances to the tick of each executed event and
     * finally to @p limit (if given and not maxTick).
     *
     * @return number of events executed.
     */
    std::uint64_t run(Tick limit = maxTick);

    /** Execute exactly one event (if any); @return true if one ran. */
    bool step();

    /** Total number of events executed so far. */
    std::uint64_t executedEvents() const { return executed; }

    /**
     * Advance the time cursor without running events; used by drivers
     * that integrate power over idle stretches. It is a bug to skip
     * over a pending event or to advance to the maxTick sentinel (the
     * usual symptom of an overflowed `now + delay`).
     */
    void advanceTo(Tick when);

    /**
     * @name Checkpoint support
     * Snapshot/restore of the clock state (sim/checkpoint). The heap
     * itself is not serialized wholesale: event objects are owned by
     * model components, so each owner re-schedules its own events via
     * restoreSchedule() with the original (when, sequence) pair, which
     * reproduces the exact (when, priority, sequence) execution order.
     * @{
     */

    /** Sequence counter that the next schedule() call would consume. */
    std::uint64_t sequenceCounter() const { return nextSequence; }

    /** Original sequence number of a scheduled event (for snapshot). */
    static std::uint64_t
    sequenceOf(const Event &event)
    {
        ODRIPS_ASSERT(event.scheduled(),
                      "sequenceOf on unscheduled event");
        return event.sequence;
    }

    /**
     * Restore the clock state captured by a snapshot. The queue must be
     * empty: restore happens on a freshly constructed platform after
     * all standing events have been descheduled.
     */
    void
    restoreClock(Tick now, std::uint64_t next_sequence,
                 std::uint64_t executed_events)
    {
        ODRIPS_ASSERT(heap.empty(),
                      "restoreClock with pending events");
        _now = now;
        nextSequence = next_sequence;
        executed = executed_events;
    }

    /**
     * Re-schedule @p event with the exact (when, sequence) pair it held
     * when the snapshot was taken, preserving same-tick ordering
     * against other restored events.
     */
    void
    restoreSchedule(Event &event, Tick when, std::uint64_t sequence)
    {
        ODRIPS_ASSERT(!event.scheduled() && when >= _now,
                      "restoreSchedule precondition");
        ODRIPS_ASSERT(sequence < nextSequence,
                      "restored sequence from the future");
        event._when = when;
        event.sequence = sequence;
        event.queue = this;
        const std::size_t index = heap.size();
        event.heapIndex = index;
        heap.push_back(&event);
        if (index > 0)
            siftUp(index);
    }

    /** @} */

  private:
    /** Heap arity: 4-ary heaps trade deeper compares for cache-dense
     * sift-downs, a net win at simulator queue depths. */
    static constexpr std::size_t arity = 4;

    /** Strict total order: (when, priority, sequence) ascending. */
    static bool
    before(const Event *a, const Event *b)
    {
        if (a->_when != b->_when)
            return a->_when < b->_when;
        if (a->_priority != b->_priority)
            return a->_priority < b->_priority;
        return a->sequence < b->sequence;
    }

    void siftUp(std::size_t index);
    void siftDown(std::size_t index);
    /** Unlink the entry at @p index, keeping the heap valid. */
    void removeAt(std::size_t index);
    /** Pop the head entry (cheaper specialization of removeAt(0)). */
    Event &popHead();
    /** Out-of-line cold path of scheduleAfter's overflow guard. */
    [[noreturn]] void overflowPanic(const Event &event, Tick delay) const;
    /** Out-of-line cold path of schedule()'s precondition checks. */
    [[noreturn]] void schedulePanic(const Event &event, Tick when) const;

    std::vector<Event *> heap;

    Tick _now = 0;
    std::uint64_t nextSequence = 0;
    std::uint64_t executed = 0;
};

} // namespace odrips

#endif // ODRIPS_SIM_EVENT_QUEUE_HH
