/**
 * @file
 * Compile-time unit safety for the power and timing layers.
 *
 * The simulator's headline numbers (Fig. 6(a) savings, Sec. 6.3 context
 * latencies) are produced by `double` arithmetic over seconds, joules
 * and watts. A bare `double` carries no unit, so a mixed-up
 * milliwatts-vs-watts or seconds-vs-ticks argument compiles silently
 * and corrupts every downstream figure. This header provides tagged
 * strong types with only dimension-legal operators:
 *
 *  - Seconds       wall-clock / simulated duration
 *  - Picoseconds   integer simulated time, interoperable with Tick
 *  - Milliwatts    power (the paper reports DRIPS power in mW)
 *  - Millijoules   energy
 *  - Hertz         frequency
 *
 * Legal dimension algebra (anything else does not compile):
 *
 *      Millijoules = Milliwatts * Seconds
 *      Milliwatts  = Millijoules / Seconds
 *      Seconds     = Millijoules / Milliwatts
 *      Seconds     = Hertz::period(), cycles = Hertz * Seconds
 *      Seconds    <-> Picoseconds <-> Tick
 *
 * Construction and read-out always name the unit explicitly
 * (`Milliwatts::fromWatts(0.06)`, `p.milliwatts()`), so no call site
 * can be ambiguous about scale. The internal representation is the SI
 * base unit (watts, joules, seconds), which keeps the arithmetic
 * bit-identical to the pre-units `double` code and therefore keeps the
 * golden-value suites exact.
 */

#ifndef ODRIPS_SIM_UNITS_HH
#define ODRIPS_SIM_UNITS_HH

#include <cstdint>
#include <limits>
#include <type_traits>

#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace odrips
{

/**
 * Width-checked narrowing cast: panics if @p value does not survive the
 * round trip to @p To (out of range, sign change, or truncation). Used
 * around the m=10/f=21 Step fixed-point arithmetic where 128-bit raw
 * values are folded back into 64-bit counters.
 */
template <typename To, typename From>
constexpr To
narrow(From value)
{
    static_assert(std::is_integral_v<From> || std::is_same_v<From, unsigned __int128>,
                  "narrow() is for integer conversions");
    const To result = static_cast<To>(value);
    ODRIPS_ASSERT(static_cast<From>(result) == value,
                  "narrowing cast lost bits");
    ODRIPS_ASSERT((result < To{}) == (value < From{}),
                  "narrowing cast changed sign");
    return result;
}

class Seconds;
class Picoseconds;
class Milliwatts;
class Millijoules;
class Hertz;

/** A duration in (fractional) seconds. */
class Seconds
{
  public:
    constexpr Seconds() = default;
    constexpr explicit Seconds(double seconds) : rep(seconds) {}

    /** Duration of @p ticks simulator ticks. */
    static constexpr Seconds
    fromTicks(Tick ticks)
    {
        return Seconds(ticksToSeconds(ticks));
    }

    static constexpr Seconds
    fromMilliseconds(double ms)
    {
        return Seconds(ms * 1e-3);
    }

    static constexpr Seconds
    fromMicroseconds(double us)
    {
        return Seconds(us * 1e-6);
    }

    constexpr double seconds() const { return rep; }
    constexpr double milliseconds() const { return rep * 1e3; }
    constexpr double microseconds() const { return rep * 1e6; }

    /** Nearest-tick simulated duration. */
    constexpr Tick ticks() const { return secondsToTicks(rep); }

    constexpr Seconds operator+(Seconds o) const { return Seconds(rep + o.rep); }
    constexpr Seconds operator-(Seconds o) const { return Seconds(rep - o.rep); }
    constexpr Seconds operator*(double k) const { return Seconds(rep * k); }
    constexpr Seconds operator/(double k) const { return Seconds(rep / k); }
    /** Ratio of two durations (dimensionless). */
    constexpr double operator/(Seconds o) const { return rep / o.rep; }
    constexpr Seconds &operator+=(Seconds o) { rep += o.rep; return *this; }
    constexpr Seconds &operator-=(Seconds o) { rep -= o.rep; return *this; }
    constexpr Seconds &operator*=(double k) { rep *= k; return *this; }
    constexpr Seconds &operator/=(double k) { rep /= k; return *this; }
    constexpr auto operator<=>(const Seconds &) const = default;

  private:
    double rep = 0.0; ///< seconds
};

constexpr Seconds operator*(double k, Seconds s) { return s * k; }

/**
 * Integer simulated time in picoseconds. One Picosecond is exactly one
 * simulator Tick (see sim/ticks.hh), so this type is the strong-typed
 * face of Tick arithmetic.
 */
class Picoseconds
{
  public:
    constexpr Picoseconds() = default;
    constexpr explicit Picoseconds(Tick ticks) : rep(ticks) {}

    /** Identity interop with the Tick time base. */
    static constexpr Picoseconds
    fromTicks(Tick ticks)
    {
        return Picoseconds(ticks);
    }

    /** Round a fractional duration to the tick grid (nearest). */
    static constexpr Picoseconds
    fromSeconds(Seconds s)
    {
        return Picoseconds(s.ticks());
    }

    constexpr Tick ticks() const { return rep; }
    constexpr Seconds seconds() const { return Seconds::fromTicks(rep); }

    constexpr Picoseconds operator+(Picoseconds o) const { return Picoseconds(rep + o.rep); }
    constexpr Picoseconds operator-(Picoseconds o) const { return Picoseconds(rep - o.rep); }
    constexpr Picoseconds operator*(Tick k) const { return Picoseconds(rep * k); }
    constexpr auto operator<=>(const Picoseconds &) const = default;

  private:
    Tick rep = 0; ///< picoseconds == ticks
};

/** Power. Named for the paper's reporting granularity (DRIPS ~60 mW). */
class Milliwatts
{
  public:
    constexpr Milliwatts() = default;

    static constexpr Milliwatts
    fromWatts(double watts)
    {
        return Milliwatts(watts);
    }

    static constexpr Milliwatts
    fromMilliwatts(double mw)
    {
        return Milliwatts(mw * 1e-3);
    }

    static constexpr Milliwatts zero() { return Milliwatts(0.0); }

    constexpr double watts() const { return rep; }
    constexpr double milliwatts() const { return rep * 1e3; }

    constexpr Milliwatts operator+(Milliwatts o) const { return Milliwatts(rep + o.rep); }
    constexpr Milliwatts operator-(Milliwatts o) const { return Milliwatts(rep - o.rep); }
    constexpr Milliwatts operator*(double k) const { return Milliwatts(rep * k); }
    constexpr Milliwatts operator/(double k) const { return Milliwatts(rep / k); }
    /** Ratio of two powers (dimensionless, e.g. a share). */
    constexpr double operator/(Milliwatts o) const { return rep / o.rep; }
    constexpr Milliwatts &operator+=(Milliwatts o) { rep += o.rep; return *this; }
    constexpr Milliwatts &operator-=(Milliwatts o) { rep -= o.rep; return *this; }
    constexpr Milliwatts &operator*=(double k) { rep *= k; return *this; }
    constexpr Milliwatts &operator/=(double k) { rep /= k; return *this; }
    constexpr Millijoules operator*(Seconds t) const;
    constexpr auto operator<=>(const Milliwatts &) const = default;

  private:
    constexpr explicit Milliwatts(double watts) : rep(watts) {}

    double rep = 0.0; ///< watts (SI base; accessors convert)
};

constexpr Milliwatts operator*(double k, Milliwatts p) { return p * k; }

/** Energy. Named for the paper's reporting granularity. */
class Millijoules
{
  public:
    constexpr Millijoules() = default;

    static constexpr Millijoules
    fromJoules(double joules)
    {
        return Millijoules(joules);
    }

    static constexpr Millijoules
    fromMillijoules(double mj)
    {
        return Millijoules(mj * 1e-3);
    }

    static constexpr Millijoules zero() { return Millijoules(0.0); }

    constexpr double joules() const { return rep; }
    constexpr double millijoules() const { return rep * 1e3; }
    constexpr double microjoules() const { return rep * 1e6; }

    constexpr Millijoules operator+(Millijoules o) const { return Millijoules(rep + o.rep); }
    constexpr Millijoules operator-(Millijoules o) const { return Millijoules(rep - o.rep); }
    constexpr Millijoules operator*(double k) const { return Millijoules(rep * k); }
    constexpr Millijoules operator/(double k) const { return Millijoules(rep / k); }
    /** Ratio of two energies (dimensionless). */
    constexpr double operator/(Millijoules o) const { return rep / o.rep; }
    /** Average power over a duration. */
    constexpr Milliwatts
    operator/(Seconds t) const
    {
        return Milliwatts::fromWatts(rep / t.seconds());
    }
    /** Time a power level takes to consume this energy. */
    constexpr Seconds
    operator/(Milliwatts p) const
    {
        return Seconds(rep / p.watts());
    }
    constexpr Millijoules &operator+=(Millijoules o) { rep += o.rep; return *this; }
    constexpr Millijoules &operator-=(Millijoules o) { rep -= o.rep; return *this; }
    constexpr Millijoules &operator*=(double k) { rep *= k; return *this; }
    constexpr Millijoules &operator/=(double k) { rep /= k; return *this; }
    constexpr auto operator<=>(const Millijoules &) const = default;

  private:
    constexpr explicit Millijoules(double joules) : rep(joules) {}

    double rep = 0.0; ///< joules (SI base; accessors convert)
};

constexpr Millijoules operator*(double k, Millijoules e) { return e * k; }

constexpr Millijoules
Milliwatts::operator*(Seconds t) const
{
    return Millijoules::fromJoules(rep * t.seconds());
}

/** Frequency. */
class Hertz
{
  public:
    constexpr Hertz() = default;
    constexpr explicit Hertz(double hz) : rep(hz) {}

    static constexpr Hertz fromKilohertz(double khz) { return Hertz(khz * 1e3); }
    static constexpr Hertz fromMegahertz(double mhz) { return Hertz(mhz * 1e6); }

    /** Frequency whose period is @p s. */
    static constexpr Hertz
    fromPeriod(Seconds s)
    {
        return Hertz(1.0 / s.seconds());
    }

    constexpr double hertz() const { return rep; }
    constexpr double kilohertz() const { return rep * 1e-3; }
    constexpr double megahertz() const { return rep * 1e-6; }

    constexpr Seconds period() const { return Seconds(1.0 / rep); }
    /** Period rounded to the tick grid (as ClockDomain::period()). */
    constexpr Picoseconds
    periodPicoseconds() const
    {
        return Picoseconds(frequencyToPeriod(rep));
    }

    /** Cycle count elapsed in a duration (fractional). */
    constexpr double operator*(Seconds t) const { return rep * t.seconds(); }
    /** Ratio of two frequencies (dimensionless, e.g. the Step). */
    constexpr double operator/(Hertz o) const { return rep / o.rep; }
    constexpr Hertz operator*(double k) const { return Hertz(rep * k); }
    constexpr Hertz operator/(double k) const { return Hertz(rep / k); }
    constexpr auto operator<=>(const Hertz &) const = default;

  private:
    double rep = 0.0; ///< hertz
};

constexpr double operator*(Seconds t, Hertz f) { return f * t; }
constexpr Hertz operator*(double k, Hertz f) { return f * k; }

namespace unit_literals
{

constexpr Seconds operator""_sec(long double s) { return Seconds(static_cast<double>(s)); }
constexpr Seconds operator""_msec(long double ms) { return Seconds::fromMilliseconds(static_cast<double>(ms)); }
constexpr Seconds operator""_usec(long double us) { return Seconds::fromMicroseconds(static_cast<double>(us)); }
constexpr Milliwatts operator""_W(long double w) { return Milliwatts::fromWatts(static_cast<double>(w)); }
constexpr Milliwatts operator""_mW(long double mw) { return Milliwatts::fromMilliwatts(static_cast<double>(mw)); }
constexpr Millijoules operator""_J(long double j) { return Millijoules::fromJoules(static_cast<double>(j)); }
constexpr Millijoules operator""_mJ(long double mj) { return Millijoules::fromMillijoules(static_cast<double>(mj)); }
constexpr Hertz operator""_Hz(long double hz) { return Hertz(static_cast<double>(hz)); }
constexpr Hertz operator""_kHz(long double khz) { return Hertz::fromKilohertz(static_cast<double>(khz)); }
constexpr Hertz operator""_MHz(long double mhz) { return Hertz::fromMegahertz(static_cast<double>(mhz)); }

} // namespace unit_literals

} // namespace odrips

#endif // ODRIPS_SIM_UNITS_HH
