#include "sim/event_queue.hh"

namespace odrips
{

Event::~Event()
{
    if (_scheduled && queue)
        queue->deschedule(*this);
}

void
EventQueue::schedule(Event &event, Tick when)
{
    if (event._scheduled)
        panic("event '", event.name(), "' scheduled twice");
    if (when < _now) {
        panic("event '", event.name(), "' scheduled in the past (",
              when, " < ", _now, ")");
    }

    event._scheduled = true;
    event.cancelled = false;
    event._when = when;
    event.sequence = nextSequence++;
    event.queue = this;

    entries.push(QueueEntry{when, event._priority, event.sequence, &event});
    ++liveCount;
}

void
EventQueue::deschedule(Event &event)
{
    if (!event._scheduled)
        panic("descheduling event '", event.name(), "' not scheduled");
    // Lazy removal: mark cancelled, drop when popped.
    event.cancelled = true;
    event._scheduled = false;
    --liveCount;
}

void
EventQueue::reschedule(Event &event, Tick when)
{
    if (event._scheduled)
        deschedule(event);
    schedule(event, when);
}

void
EventQueue::skipCancelled()
{
    while (!entries.empty()) {
        const QueueEntry &head = entries.top();
        // A cancelled-then-rescheduled event has a new sequence number;
        // drop stale entries whose sequence no longer matches.
        if (head.event->cancelled || head.event->sequence != head.sequence ||
            !head.event->_scheduled) {
            entries.pop();
        } else {
            break;
        }
    }
}

Tick
EventQueue::nextEventTick() const
{
    auto *self = const_cast<EventQueue *>(this);
    self->skipCancelled();
    return entries.empty() ? maxTick : entries.top().when;
}

bool
EventQueue::step()
{
    skipCancelled();
    if (entries.empty())
        return false;

    QueueEntry entry = entries.top();
    entries.pop();

    Event &event = *entry.event;
    ODRIPS_ASSERT(entry.when >= _now, "event queue went backwards");
    _now = entry.when;
    event._scheduled = false;
    --liveCount;
    ++executed;
    event.callback();
    return true;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t count = 0;
    while (true) {
        Tick next = nextEventTick();
        if (next == maxTick || next > limit)
            break;
        step();
        ++count;
    }
    if (limit != maxTick && limit > _now)
        _now = limit;
    return count;
}

void
EventQueue::advanceTo(Tick when)
{
    if (when < _now)
        panic("advanceTo(", when, ") before now (", _now, ")");
    if (nextEventTick() < when)
        panic("advanceTo(", when, ") would skip a pending event");
    _now = when;
}

} // namespace odrips
