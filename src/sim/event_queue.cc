#include "sim/event_queue.hh"

#include <algorithm>

namespace odrips
{

Event::~Event()
{
    if (scheduled())
        queue->deschedule(*this);
}

void
EventQueue::siftUp(std::size_t index)
{
    Event *moving = heap[index];
    while (index > 0) {
        const std::size_t parent = (index - 1) / arity;
        if (!before(moving, heap[parent]))
            break;
        heap[index] = heap[parent];
        heap[index]->heapIndex = index;
        index = parent;
    }
    heap[index] = moving;
    moving->heapIndex = index;
}

void
EventQueue::siftDown(std::size_t index)
{
    Event *moving = heap[index];
    const std::size_t count = heap.size();
    while (true) {
        const std::size_t first_child = index * arity + 1;
        if (first_child >= count)
            break;
        std::size_t best = first_child;
        const std::size_t last_child =
            std::min(first_child + arity, count);
        for (std::size_t c = first_child + 1; c < last_child; ++c) {
            if (before(heap[c], heap[best]))
                best = c;
        }
        if (!before(heap[best], moving))
            break;
        heap[index] = heap[best];
        heap[index]->heapIndex = index;
        index = best;
    }
    heap[index] = moving;
    moving->heapIndex = index;
}

void
EventQueue::removeAt(std::size_t index)
{
    Event *last = heap.back();
    heap.pop_back();
    if (index < heap.size()) {
        heap[index] = last;
        last->heapIndex = index;
        siftDown(index);
        siftUp(index);
    }
}

Event &
EventQueue::popHead()
{
    Event &event = *heap.front();
    Event *last = heap.back();
    heap.pop_back();
    if (!heap.empty()) {
        heap[0] = last;
        last->heapIndex = 0;
        siftDown(0);
    }
    ODRIPS_ASSERT(event._when >= _now, "event queue went backwards");
    _now = event._when;
    event.queue = nullptr;
    ++executed;
    return event;
}

void
EventQueue::overflowPanic(const Event &event, Tick delay) const
{
    panic("event '", event.name(), "' delay ", delay,
          " overflows the tick counter (now ", _now, ")");
}

void
EventQueue::schedulePanic(const Event &event, Tick when) const
{
    if (event.scheduled())
        panic("event '", event.name(), "' scheduled twice");
    panic("event '", event.name(), "' scheduled in the past (", when,
          " < ", _now, ")");
}

void
EventQueue::deschedule(Event &event)
{
    if (!event.scheduled())
        panic("descheduling event '", event.name(), "' not scheduled");
    if (event.queue != this) {
        panic("descheduling event '", event.name(),
              "' from a foreign queue");
    }
    removeAt(event.heapIndex);
    event.queue = nullptr;
}

void
EventQueue::reschedule(Event &event, Tick when)
{
    if (!event.scheduled()) {
        schedule(event, when);
        return;
    }
    if (event.queue != this) {
        panic("rescheduling event '", event.name(),
              "' owned by a foreign queue");
    }
    if (when < _now) {
        panic("event '", event.name(), "' rescheduled into the past (",
              when, " < ", _now, ")");
    }

    // In-place move: update the key and restore heap order from the
    // event's own slot. A reschedule consumes a fresh sequence number,
    // exactly as the historical deschedule-then-schedule pair did, so
    // same-tick FIFO ordering is preserved bit-for-bit.
    event._when = when;
    event.sequence = nextSequence++;
    siftDown(event.heapIndex);
    siftUp(event.heapIndex);
}

bool
EventQueue::step()
{
    if (heap.empty())
        return false;
    popHead().callback();
    return true;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t count = 0;
    while (!heap.empty()) {
        // An event parked at the maxTick sentinel never fires through
        // run(), matching the historical "nextEventTick() == maxTick
        // means idle" contract.
        const Tick next = heap.front()->_when;
        if (next == maxTick || next > limit)
            break;
        popHead().callback();
        ++count;
    }
    if (limit != maxTick && limit > _now)
        _now = limit;
    return count;
}

void
EventQueue::advanceTo(Tick when)
{
    if (when < _now)
        panic("advanceTo(", when, ") before now (", _now, ")");
    if (when == maxTick) {
        panic("advanceTo(maxTick): target overflowed the tick counter");
    }
    if (nextEventTick() < when)
        panic("advanceTo(", when, ") would skip a pending event");
    _now = when;
}

} // namespace odrips
