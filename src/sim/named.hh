/**
 * @file
 * Mixin giving an object a hierarchical instance name (e.g.
 * "platform.processor.pmu"), used in log messages and stat reports.
 */

#ifndef ODRIPS_SIM_NAMED_HH
#define ODRIPS_SIM_NAMED_HH

#include <string>
#include <utility>

namespace odrips
{

/** An object with a dotted hierarchical name. */
class Named
{
  public:
    explicit Named(std::string name) : _name(std::move(name)) {}
    virtual ~Named() = default;

    /** Full hierarchical instance name. */
    const std::string &name() const { return _name; }

  private:
    std::string _name;
};

} // namespace odrips

#endif // ODRIPS_SIM_NAMED_HH
