/**
 * @file
 * Small-buffer callback for simulation events.
 *
 * The event kernel fires tens of millions of callbacks per sweep, so
 * the callback wrapper must never touch the heap. std::function's
 * small-object buffer (16 B on libstdc++) is too small for the flow
 * and workload lambdas, which capture half a dozen references; this
 * wrapper gives them 64 bytes in place and rejects anything larger at
 * compile time instead of silently allocating.
 */

#ifndef ODRIPS_SIM_EVENT_CALLBACK_HH
#define ODRIPS_SIM_EVENT_CALLBACK_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace odrips
{

/**
 * A move-nothing, copy-nothing `void()` callable with inline storage.
 * Constructed once from a lambda (or any callable) and invoked in
 * place; the callable lives inside the owning Event for its whole
 * lifetime, so no move or copy support is needed.
 */
class EventCallback
{
  public:
    /** Inline storage size; fits the largest kernel/flow lambda. */
    static constexpr std::size_t bufferBytes = 64;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback>>>
    EventCallback(F &&fn) // NOLINT: implicit by design, mirrors
                          // std::function at the Event interface
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= bufferBytes,
                      "event callback capture exceeds the inline "
                      "buffer; shrink the capture list or raise "
                      "EventCallback::bufferBytes");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned event callback");
        ::new (static_cast<void *>(storage)) Fn(std::forward<F>(fn));
        invokeFn = [](void *obj) { (*static_cast<Fn *>(obj))(); };
        if constexpr (!std::is_trivially_destructible_v<Fn>) {
            destroyFn = [](void *obj) { static_cast<Fn *>(obj)->~Fn(); };
        }
    }

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    ~EventCallback()
    {
        if (destroyFn)
            destroyFn(storage);
    }

    void operator()() { invokeFn(storage); }

  private:
    alignas(std::max_align_t) unsigned char storage[bufferBytes];
    void (*invokeFn)(void *) = nullptr;
    void (*destroyFn)(void *) = nullptr;
};

} // namespace odrips

#endif // ODRIPS_SIM_EVENT_CALLBACK_HH
