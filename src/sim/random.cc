#include "sim/random.hh"

#include <cmath>

#include "sim/logging.hh"

namespace odrips
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
Rng::reseed(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &word : s)
        word = splitmix64(x);
}

Rng
Rng::fork(std::uint64_t index) const
{
    // Hash the full 256-bit parent state and the index into a child
    // seed. Every word passes through splitmix64 so that adjacent
    // indices land in unrelated regions of the xoshiro state space.
    std::uint64_t x = index ^ 0x632be59bd9b4e019ULL;
    std::uint64_t h = splitmix64(x);
    for (const std::uint64_t word : s) {
        x ^= word;
        h ^= splitmix64(x);
    }
    return Rng(h);
}

std::uint64_t
Rng::next64()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    ODRIPS_ASSERT(bound > 0, "uniformInt bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    while (true) {
        std::uint64_t r = next64();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::exponential(double mean)
{
    ODRIPS_ASSERT(mean > 0, "exponential mean must be positive");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::normal(double mean, double stddev)
{
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
    return mean + stddev * z;
}

} // namespace odrips
