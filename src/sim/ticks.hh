/**
 * @file
 * Simulation time base.
 *
 * The simulator counts time in integer picoseconds ("ticks"). A signed
 * 64-bit tick counter covers roughly 106 days of simulated time, far
 * beyond any connected-standby experiment in this repository.
 */

#ifndef ODRIPS_SIM_TICKS_HH
#define ODRIPS_SIM_TICKS_HH

#include <cstdint>

namespace odrips
{

/** Simulation time in picoseconds. */
using Tick = std::int64_t;

/** One picosecond expressed in ticks. */
constexpr Tick onePs = 1;
/** One nanosecond expressed in ticks. */
constexpr Tick oneNs = 1000 * onePs;
/** One microsecond expressed in ticks. */
constexpr Tick oneUs = 1000 * oneNs;
/** One millisecond expressed in ticks. */
constexpr Tick oneMs = 1000 * oneUs;
/** One second expressed in ticks. */
constexpr Tick oneSec = 1000 * oneMs;

/** Maximum representable tick, used as "never". */
constexpr Tick maxTick = INT64_MAX;

/** Convert seconds (floating point) to ticks, rounding to nearest. */
constexpr Tick
secondsToTicks(double seconds)
{
    return static_cast<Tick>(seconds * static_cast<double>(oneSec) + 0.5);
}

/** Convert ticks to seconds (floating point). */
constexpr double
ticksToSeconds(Tick ticks)
{
    return static_cast<double>(ticks) / static_cast<double>(oneSec);
}

/** Convert a frequency in Hz to a clock period in ticks (nearest). */
constexpr Tick
frequencyToPeriod(double hz)
{
    return static_cast<Tick>(static_cast<double>(oneSec) / hz + 0.5);
}

/** Convert a period in ticks to a frequency in Hz. */
constexpr double
periodToFrequency(Tick period)
{
    return static_cast<double>(oneSec) / static_cast<double>(period);
}

} // namespace odrips

#endif // ODRIPS_SIM_TICKS_HH
