#include "io/aon_io.hh"

namespace odrips
{

const char *
to_string(AonIoFunction f)
{
    switch (f) {
      case AonIoFunction::Clock24Buffers: return "24MHz clock buffers";
      case AonIoFunction::PmlProcessorSide: return "PML (processor side)";
      case AonIoFunction::ThermalReport: return "thermal report";
      case AonIoFunction::VrSerial: return "VR serial interface";
      case AonIoFunction::Debug: return "debug interface";
    }
    return "?";
}

AonIoBank::AonIoBank(std::string name, PowerComponent *power_comp,
                     Milliwatts total_power)
    : Named(std::move(name)), comp(power_comp), totalPower(total_power)
{
    if (comp)
        comp->setPower(totalPower, 0);
}

Milliwatts
AonIoBank::functionPower(AonIoFunction f) const
{
    // Share of bank power by function (clock buffers dominate because
    // they toggle at 24 MHz; the rest is mostly pad leakage).
    switch (f) {
      case AonIoFunction::Clock24Buffers: return totalPower * 0.40;
      case AonIoFunction::PmlProcessorSide: return totalPower * 0.25;
      case AonIoFunction::ThermalReport: return totalPower * 0.10;
      case AonIoFunction::VrSerial: return totalPower * 0.15;
      case AonIoFunction::Debug: return totalPower * 0.10;
    }
    return Milliwatts::zero();
}

void
AonIoBank::setPowered(bool powered, Tick now)
{
    if (powered == on)
        return;
    on = powered;
    if (comp)
        comp->setPower(on ? totalPower : Milliwatts::zero(), now);
}

} // namespace odrips
