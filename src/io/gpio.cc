#include "io/gpio.hh"

namespace odrips
{

GpioBank::GpioBank(std::string name, unsigned pin_count)
    : Named(std::move(name)), pins(pin_count)
{
}

void
GpioBank::checkPin(unsigned pin) const
{
    ODRIPS_ASSERT(pin < pins.size(), name(), ": bad GPIO index ", pin);
}

unsigned
GpioBank::sparePins() const
{
    unsigned spare = 0;
    for (const Pin &p : pins) {
        if (p.dir == GpioDirection::Unassigned)
            ++spare;
    }
    return spare;
}

unsigned
GpioBank::claim(const std::string &function, GpioDirection direction)
{
    ODRIPS_ASSERT(direction != GpioDirection::Unassigned,
                  name(), ": claiming with no direction");
    for (unsigned i = 0; i < pins.size(); ++i) {
        if (pins[i].dir == GpioDirection::Unassigned) {
            pins[i].dir = direction;
            pins[i].function = function;
            pins[i].level = false;
            return i;
        }
    }
    fatal(name(), ": no spare GPIO for function '", function, "'");
}

void
GpioBank::release(unsigned pin)
{
    checkPin(pin);
    pins[pin] = Pin{};
}

void
GpioBank::setLevel(unsigned pin, bool level)
{
    checkPin(pin);
    ODRIPS_ASSERT(pins[pin].dir == GpioDirection::Output,
                  name(), ": setLevel on non-output pin ", pin);
    pins[pin].level = level;
}

bool
GpioBank::level(unsigned pin) const
{
    checkPin(pin);
    ODRIPS_ASSERT(pins[pin].dir != GpioDirection::Unassigned,
                  name(), ": reading unassigned pin ", pin);
    return pins[pin].level;
}

void
GpioBank::driveInput(unsigned pin, bool level)
{
    checkPin(pin);
    ODRIPS_ASSERT(pins[pin].dir == GpioDirection::Input,
                  name(), ": driveInput on non-input pin ", pin);
    pins[pin].level = level;
}

const std::string &
GpioBank::function(unsigned pin) const
{
    checkPin(pin);
    return pins[pin].function;
}

GpioDirection
GpioBank::direction(unsigned pin) const
{
    checkPin(pin);
    return pins[pin].dir;
}

} // namespace odrips
