/**
 * @file
 * On-board FET power gate for the processor's AON IO rail.
 *
 * The paper chooses an external FET over an embedded power gate because
 * it (1) leaks less, (2) costs no processor pins, and (3) needs no
 * processor design changes (Sec. 5.1). The FET is driven by a chipset
 * GPIO; when open it isolates the AON IO rail with a residual leakage
 * below 0.3% of the gated load (Sec. 5.3).
 */

#ifndef ODRIPS_IO_FET_GATE_HH
#define ODRIPS_IO_FET_GATE_HH

#include "io/aon_io.hh"
#include "io/gpio.hh"
#include "power/component.hh"
#include "sim/ticks.hh"

namespace odrips
{

/** The board FET gating an AonIoBank. */
class FetGate : public Named
{
  public:
    /**
     * @param name          instance name
     * @param load          the AON IO bank being gated
     * @param control_gpio  chipset GPIO bank holding the control pin
     * @param control_pin   claimed output pin index
     * @param leak_comp     power component for the FET's off-state
     *                      leakage (board group); may be nullptr
     * @param leak_fraction off-state leakage as a fraction of the gated
     *                      load's rated power (paper: < 0.3%)
     * @param switch_latency gate switching time
     */
    FetGate(std::string name, AonIoBank &gated_load, GpioBank &control_gpio,
            unsigned control_pin, PowerComponent *leak_comp = nullptr,
            double leak_fraction = 0.003,
            Tick switch_latency = 2 * oneUs)
        : Named(std::move(name)), load(gated_load), gpio(control_gpio),
          pin(control_pin), leakComp(leak_comp),
          leakFraction(leak_fraction), switchLatency_(switch_latency)
    {
        gpio.setLevel(pin, true); // conducting by default
    }

    /** True when the FET conducts (load powered). */
    bool conducting() const { return gpio.level(pin); }

    /**
     * Open the gate (cut power to the load) at @p now.
     * @return the switching latency.
     */
    Tick
    open(Tick now)
    {
        gpio.setLevel(pin, false);
        load.setPowered(false, now + switchLatency_);
        if (leakComp) {
            leakComp->setPower(load.ratedPower() * leakFraction,
                               now + switchLatency_);
        }
        return switchLatency_;
    }

    /** Close the gate (restore power) at @p now. */
    Tick
    close(Tick now)
    {
        gpio.setLevel(pin, true);
        load.setPowered(true, now + switchLatency_);
        if (leakComp)
            leakComp->setPower(Milliwatts::zero(), now + switchLatency_);
        return switchLatency_;
    }

    Tick switchLatency() const { return switchLatency_; }
    Milliwatts offLeakage() const { return load.ratedPower() * leakFraction; }

  private:
    AonIoBank &load;
    GpioBank &gpio;
    unsigned pin;
    PowerComponent *leakComp; // ckpt: via(PowerModel)
    double leakFraction; // ckpt: derived
    Tick switchLatency_; // ckpt: derived
};

} // namespace odrips

#endif // ODRIPS_IO_FET_GATE_HH
