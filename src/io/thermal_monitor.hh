/**
 * @file
 * Thermal-event monitor (paper Sec. 5.2).
 *
 * The embedded controller (EC) reports thermal events to the platform.
 * In baseline DRIPS the processor's AON thermal-report IO sees the line
 * continuously; in ODRIPS that IO is power-gated and the event is
 * offloaded to a chipset GPIO that the chipset PMU *samples with the
 * 32 kHz clock* — detection gains up to one slow-clock period of
 * latency, which connected standby can afford (Sec. 3).
 */

#ifndef ODRIPS_IO_THERMAL_MONITOR_HH
#define ODRIPS_IO_THERMAL_MONITOR_HH

#include "clock/clock_domain.hh"
#include "io/gpio.hh"
#include "sim/named.hh"
#include "sim/ticks.hh"

namespace odrips
{

/** Samples an EC-driven GPIO line on slow-clock edges. */
class ThermalMonitor : public Named
{
  public:
    /**
     * @param name           instance name
     * @param gpio_bank      chipset GPIO bank
     * @param input_pin      claimed input pin wired to the EC
     * @param sampling_clock clock whose rising edges sample the pin
     *                       (the 32.768 kHz RTC clock in ODRIPS)
     */
    ThermalMonitor(std::string name, GpioBank &gpio_bank, unsigned input_pin,
                   const ClockDomain &sampling_clock)
        : Named(std::move(name)), gpios(gpio_bank), pin(input_pin),
          clock(sampling_clock)
    {}

    /** EC asserts/deasserts the thermal line at @p now. */
    void
    driveLine(bool asserted, Tick now)
    {
        gpios.driveInput(pin, asserted);
        assertedAt = asserted ? now : maxTick;
    }

    /** Line level right now. */
    bool lineAsserted() const { return gpios.level(pin); }

    /**
     * Tick at which a line asserted at @p asserted_at is *detected*:
     * the first sampling-clock rising edge at or after the assertion.
     * The sampling clock must be running.
     */
    Tick
    detectionTick(Tick asserted_at) const
    {
        ODRIPS_ASSERT(clock.running(),
                      name(), ": sampling clock not running");
        return clock.nextEdge(asserted_at);
    }

    /** Worst-case detection latency (one sampling period). */
    Tick worstCaseLatency() const { return clock.period(); }

    /** Detection tick of the currently asserted event (maxTick if the
     * line is idle). */
    Tick
    pendingDetection() const
    {
        return assertedAt == maxTick ? maxTick : detectionTick(assertedAt);
    }

    /** @name Checkpoint support @{ */
    Tick assertionTick() const { return assertedAt; }
    void restoreAssertionTick(Tick t) { assertedAt = t; }
    /** @} */

  private:
    GpioBank &gpios;
    unsigned pin;
    const ClockDomain &clock;
    Tick assertedAt = maxTick;
};

} // namespace odrips

#endif // ODRIPS_IO_THERMAL_MONITOR_HH
