/**
 * @file
 * General-purpose IO bank.
 *
 * The chipset has spare GPIOs; the AON-IO-gating technique consumes two
 * of them (paper Sec. 5.3): one input to monitor the embedded
 * controller's thermal-event line (sampled with the 32 kHz clock in
 * ODRIPS) and one output to drive the on-board FET that gates the
 * processor's AON IO power rail.
 */

#ifndef ODRIPS_IO_GPIO_HH
#define ODRIPS_IO_GPIO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/named.hh"

namespace odrips
{

/** Direction of a GPIO pin. */
enum class GpioDirection
{
    Unassigned,
    Input,
    Output,
};

/** A bank of GPIO pins with allocation tracking. */
class GpioBank : public Named
{
  public:
    GpioBank(std::string name, unsigned pin_count);

    unsigned pinCount() const { return static_cast<unsigned>(pins.size()); }

    /** Number of pins not yet claimed. */
    unsigned sparePins() const;

    /**
     * Claim a spare pin for a function. @return pin index.
     * Fails (fatal) when no spare pin remains — GPIOs are a finite
     * resource, which is the point the paper makes about pin cost.
     */
    unsigned claim(const std::string &function, GpioDirection direction);

    /** Release a claimed pin back to the spare pool. */
    void release(unsigned pin);

    /** Drive an output pin. */
    void setLevel(unsigned pin, bool level);

    /** Sample a pin. */
    bool level(unsigned pin) const;

    /** Externally drive an input pin (board-side stimulus). */
    void driveInput(unsigned pin, bool level);

    const std::string &function(unsigned pin) const;
    GpioDirection direction(unsigned pin) const;

    /**
     * @name Checkpoint support
     * Pin claims (direction + function) are re-established by platform
     * construction, which is a pure function of the configuration; a
     * restore only re-applies the sampled levels after verifying the
     * claim layout matches.
     * @{
     */

    /** Read a pin's level directly (bypasses direction checks, so
     * unclaimed pins can be captured too). */
    bool
    rawLevel(unsigned pin) const
    {
        checkPin(pin);
        return pins[pin].level;
    }

    /** Restore a pin's level directly (bypasses direction checks). */
    void
    restoreLevel(unsigned pin, bool level)
    {
        checkPin(pin);
        pins[pin].level = level;
    }
    /** @} */

  private:
    struct Pin
    {
        GpioDirection dir = GpioDirection::Unassigned; // ckpt: derived
        bool level = false;
        std::string function; // ckpt: derived
    };

    void checkPin(unsigned pin) const;

    std::vector<Pin> pins;
};

} // namespace odrips

#endif // ODRIPS_IO_GPIO_HH
