/**
 * @file
 * Processor always-on (AON) IO bank.
 *
 * The IOs that stay powered in baseline DRIPS (paper Sec. 5): 24 MHz
 * differential clock buffers, the two PML interfaces, thermal reporting
 * from the embedded controller, the voltage-regulator control serial
 * interface, and the debug interface. In ODRIPS the whole bank is
 * power-gated by an on-board FET once its functions are offloaded to
 * the chipset.
 */

#ifndef ODRIPS_IO_AON_IO_HH
#define ODRIPS_IO_AON_IO_HH

#include <string>
#include <vector>

#include "power/component.hh"
#include "sim/logging.hh"
#include "sim/named.hh"

namespace odrips
{

/** The functions hosted on the processor's AON IO bank. */
enum class AonIoFunction
{
    Clock24Buffers,  ///< differential 24 MHz clock buffers
    PmlProcessorSide,///< both PML interfaces, processor side
    ThermalReport,   ///< embedded-controller thermal interface
    VrSerial,        ///< voltage-regulator control serial interface
    Debug,           ///< debug interface
};

/** Printable function name. */
const char *to_string(AonIoFunction f);

/** The bank of AON IOs with per-function power. */
class AonIoBank : public Named
{
  public:
    /**
     * @param name  instance name
     * @param comp  power component accounting the bank's draw
     * @param total_power nominal power of the whole bank when powered
     */
    AonIoBank(std::string name, PowerComponent *comp, Milliwatts total_power);

    /** Per-function share of the bank power. */
    Milliwatts functionPower(AonIoFunction f) const;

    /** Total bank power when powered. */
    Milliwatts ratedPower() const { return totalPower; }

    bool powered() const { return on; }

    /**
     * Power the bank on/off at @p now. Called by the FET gate. While
     * off, none of the IO functions may be used.
     */
    void setPowered(bool powered, Tick now);

    /** Check that a function is usable (powered). */
    void
    requireFunction(AonIoFunction f) const
    {
        ODRIPS_ASSERT(on, name(), ": IO function '", to_string(f),
                      "' used while power-gated");
    }

    /** Restore the powered flag without touching the power component
     * (checkpoint support: component levels restore via PowerModel). */
    void restorePoweredFlag(bool powered) { on = powered; }

  private:
    PowerComponent *comp; // ckpt: via(PowerModel)
    Milliwatts totalPower; // ckpt: derived
    bool on = true;
};

} // namespace odrips

#endif // ODRIPS_IO_AON_IO_HH
