/**
 * @file
 * Power Management Link (PML).
 *
 * Two physical master-slave interfaces between the processor and the
 * chipset, both clocked at 24 MHz (paper Sec. 4.1.2). The processor
 * masters the processor-to-chipset direction; the chipset masters the
 * reverse. Because each interface is synchronous and master-driven the
 * channel is *deterministic*: a message of W words takes a fixed number
 * of clock cycles, which is why a constant compensation can be added to
 * timer values in flight.
 */

#ifndef ODRIPS_IO_PML_HH
#define ODRIPS_IO_PML_HH

#include <cstdint>

#include "clock/clock_domain.hh"
#include "sim/logging.hh"
#include "sim/named.hh"
#include "sim/ticks.hh"

namespace odrips
{

/** Direction of a PML transfer. */
enum class PmlDirection
{
    ProcessorToChipset,
    ChipsetToProcessor,
};

/** Result of a PML message transfer. */
struct PmlTransfer
{
    Tick issued = 0;
    Tick delivered = 0;
    std::uint64_t cycles = 0;

    Tick latency() const { return delivered - issued; }
};

/** The deterministic power-management link. */
class Pml : public Named
{
  public:
    /**
     * @param name             instance name
     * @param link_clock       24 MHz link clock
     * @param cycles_per_word  serialization cost of one 32-bit word
     * @param protocol_cycles  fixed handshake overhead per message
     */
    Pml(std::string name, const ClockDomain &link_clock,
        std::uint64_t cycles_per_word = 4,
        std::uint64_t protocol_cycles = 8)
        : Named(std::move(name)), clock(link_clock),
          cyclesPerWord(cycles_per_word), protocolCycles(protocol_cycles)
    {}

    /** True when messages can flow (both IO sides powered, clock on). */
    bool up() const { return linkUp && clock.running(); }

    /** Bring the link up/down (AON IO gating drops it). */
    void setUp(bool is_up) { linkUp = is_up; }

    /** Deterministic cycle count for a message of @p words words. */
    std::uint64_t
    messageCycles(std::uint64_t words) const
    {
        return protocolCycles + words * cyclesPerWord;
    }

    /**
     * Transfer a message of @p words 32-bit words at @p now.
     * The link must be up.
     */
    PmlTransfer
    transfer(std::uint64_t words, Tick now)
    {
        ODRIPS_ASSERT(up(), name(), ": transfer while link down");
        PmlTransfer t;
        t.issued = now;
        t.cycles = messageCycles(words);
        t.delivered = now + static_cast<Tick>(t.cycles) * clock.period();
        ++messageCount;
        return t;
    }

    /** Cycles to move a 64-bit timer value (two words). */
    std::uint64_t timerTransferCycles() const { return messageCycles(2); }

    std::uint64_t messagesSent() const { return messageCount; }

    /** @name Checkpoint support @{ */
    void
    restoreState(bool link_up, std::uint64_t messages_sent)
    {
        linkUp = link_up;
        messageCount = messages_sent;
    }

    bool linkRaised() const { return linkUp; }
    /** @} */

  private:
    const ClockDomain &clock;
    std::uint64_t cyclesPerWord; // ckpt: derived
    std::uint64_t protocolCycles; // ckpt: derived
    bool linkUp = true;
    std::uint64_t messageCount = 0;
};

} // namespace odrips

#endif // ODRIPS_IO_PML_HH
