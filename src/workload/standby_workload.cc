#include "workload/standby_workload.hh"

#include <sstream>

#include "sim/logging.hh"

namespace odrips
{

std::string
StandbyTrace::serialize() const
{
    std::ostringstream os;
    os << "# idle_dwell_ps cpu_cycles stall_ps reason coalesced\n";
    for (const StandbyCycle &c : cycles) {
        os << c.idleDwell << ' ' << c.cpuCycles << ' ' << c.stallTime
           << ' ' << static_cast<int>(c.reason) << ' ' << c.coalesced
           << '\n';
    }
    return os.str();
}

StandbyTrace
StandbyTrace::parse(const std::string &text)
{
    StandbyTrace trace;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        StandbyCycle c;
        int reason = 0;
        if (!(ls >> c.idleDwell >> c.cpuCycles >> c.stallTime >> reason))
            fatal("malformed standby trace line: '", line, "'");
        ODRIPS_ASSERT(reason >= 0 && reason <= 2, "bad wake reason");
        c.reason = static_cast<WakeReason>(reason);
        ls >> c.coalesced; // optional fifth field (older traces)
        trace.cycles.push_back(c);
    }
    return trace;
}

double
StandbyTrace::meanIdleSeconds() const
{
    if (cycles.empty())
        return 0.0;
    double sum = 0.0;
    for (const StandbyCycle &c : cycles)
        sum += ticksToSeconds(c.idleDwell);
    return sum / static_cast<double>(cycles.size());
}

double
StandbyTrace::meanActiveSeconds(double core_hz) const
{
    if (cycles.empty())
        return 0.0;
    double sum = 0.0;
    for (const StandbyCycle &c : cycles)
        sum += ticksToSeconds(c.activeDuration(core_hz));
    return sum / static_cast<double>(cycles.size());
}

StandbyWorkloadGenerator::StandbyWorkloadGenerator(
    const WorkloadConfig &config)
    : cfg(config), rng(config.seed)
{
}

StandbyTrace
StandbyWorkloadGenerator::generate(std::size_t count)
{
    // The active window is defined at the 0.8 GHz reference point: the
    // scalable fraction converts to core cycles, the rest is stall.
    const double reference_hz = 0.8e9;

    KernelTimerSource kernel(secondsToTicks(cfg.idleDwellSeconds), 0.05);
    std::unique_ptr<PoissonSource> network;
    if (cfg.networkWakeMeanSeconds > 0.0) {
        network = std::make_unique<PoissonSource>(
            WakeReason::Network, cfg.networkWakeMeanSeconds);
    }
    const Tick window = secondsToTicks(cfg.coalescingWindowSeconds);

    StandbyTrace trace;
    trace.cycles.reserve(count);
    Tick cursor = 0;
    Tick pending_network = maxTick;
    for (std::size_t i = 0; i < count; ++i) {
        const WakeEvent kernel_wake = kernel.nextAfter(cursor, rng);
        if (network && pending_network == maxTick)
            pending_network = network->nextAfter(cursor, rng).time;

        StandbyCycle c;
        WakeEvent wake = kernel_wake;
        if (pending_network < kernel_wake.time) {
            if (kernel_wake.time - pending_network <= window) {
                // Buffered by the peripheral/SoC: handled together
                // with the kernel-maintenance wake (Observation 1).
                c.coalesced = 1;
            } else {
                wake = WakeEvent{pending_network, WakeReason::Network};
            }
            pending_network = maxTick;
        }
        c.idleDwell = wake.time - cursor;
        c.reason = wake.reason;

        // A coalesced event adds its (smaller) handling work to the
        // maintenance window instead of paying its own wake cycle.
        const double active_seconds =
            rng.uniform(cfg.activeMinSeconds, cfg.activeMaxSeconds) *
            (1.0 + 0.3 * c.coalesced);
        const double cpu_seconds = active_seconds * cfg.scalableFraction;
        c.cpuCycles =
            static_cast<std::uint64_t>(cpu_seconds * reference_hz);
        c.stallTime =
            secondsToTicks(active_seconds * (1.0 - cfg.scalableFraction));

        cursor = wake.time + secondsToTicks(active_seconds);
        trace.cycles.push_back(c);
    }
    return trace;
}

std::uint64_t
StandbyTrace::totalCoalesced() const
{
    std::uint64_t sum = 0;
    for (const StandbyCycle &c : cycles)
        sum += c.coalesced;
    return sum;
}

StandbyTrace
StandbyWorkloadGenerator::fixed(std::size_t count, Tick idle_dwell,
                                Tick active_duration,
                                double scalable_fraction,
                                double reference_core_hz)
{
    StandbyTrace trace;
    trace.cycles.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        StandbyCycle c;
        c.idleDwell = idle_dwell;
        const double active_seconds = ticksToSeconds(active_duration);
        c.cpuCycles = static_cast<std::uint64_t>(
            active_seconds * scalable_fraction * reference_core_hz);
        c.stallTime = secondsToTicks(active_seconds *
                                     (1.0 - scalable_fraction));
        trace.cycles.push_back(c);
    }
    return trace;
}

} // namespace odrips
