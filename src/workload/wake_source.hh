/**
 * @file
 * Wake-event sources for the connected-standby workload.
 *
 * The platform wakes either on the internal kernel-maintenance timer
 * (~every 30 s in the paper's measurements) or on external triggers —
 * network push notifications, user input — arriving through the IOs
 * (Sec. 2.3).
 */

#ifndef ODRIPS_WORKLOAD_WAKE_SOURCE_HH
#define ODRIPS_WORKLOAD_WAKE_SOURCE_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/random.hh"
#include "sim/ticks.hh"

namespace odrips
{

/** What triggered a wake. */
enum class WakeReason
{
    KernelTimer, ///< OS maintenance timer (TNTE-scheduled)
    Network,     ///< push notification through a NIC
    User,        ///< user input
};

const char *to_string(WakeReason reason);

/** A scheduled wake event. */
struct WakeEvent
{
    Tick time = 0;
    WakeReason reason = WakeReason::KernelTimer;
};

/** Generator of wake events of one kind. */
class WakeSource
{
  public:
    virtual ~WakeSource() = default;

    /** First wake strictly after @p after. */
    virtual WakeEvent nextAfter(Tick after, Rng &rng) = 0;
};

/** Periodic kernel-maintenance timer with optional jitter. */
class KernelTimerSource : public WakeSource
{
  public:
    /**
     * @param period          nominal interval (paper: ~30 s)
     * @param jitter_fraction uniform jitter as a fraction of the period
     */
    explicit KernelTimerSource(Tick period, double jitter_fraction = 0.0);

    WakeEvent nextAfter(Tick after, Rng &rng) override;

  private:
    Tick period;
    double jitter;
};

/** Poisson-arrival external wake source (network or user). */
class PoissonSource : public WakeSource
{
  public:
    PoissonSource(WakeReason reason, double mean_interval_seconds);

    WakeEvent nextAfter(Tick after, Rng &rng) override;

  private:
    WakeReason reason;
    double meanSeconds;
};

/** Earliest-of combinator over several sources. */
class CombinedWakeSource : public WakeSource
{
  public:
    void
    add(std::unique_ptr<WakeSource> source)
    {
        sources.push_back(std::move(source));
    }

    bool empty() const { return sources.empty(); }

    WakeEvent nextAfter(Tick after, Rng &rng) override;

  private:
    std::vector<std::unique_ptr<WakeSource>> sources;
};

} // namespace odrips

#endif // ODRIPS_WORKLOAD_WAKE_SOURCE_HH
