/**
 * @file
 * The `.odwl` replayable workload trace format.
 *
 * An ODWL file carries a fleet population (the weighted profile x
 * technique classes plus the population seed) and, optionally,
 * pre-expanded device-day cycle traces. The encoding follows the same
 * discipline as the result store and simulator snapshots: ckpt::Writer
 * / ckpt::Reader little-endian primitives, named sections, and a
 * CRC-32 per section payload, so a truncated or bit-flipped file is
 * rejected as a unit — validation (magic, version, CRCs, expectEnd,
 * semantic ranges, TechniqueSet::validate) completes before anything
 * is returned, and every rejection increments a process-wide counter
 * that the torture tests and campaign telemetry read. A corrupt trace
 * is never partially replayed.
 */

#ifndef ODRIPS_WORKLOAD_ODWL_HH
#define ODRIPS_WORKLOAD_ODWL_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "workload/user_profile.hh"

namespace odrips
{

/** Raised on any malformed, truncated, or corrupted .odwl input. */
class OdwlError : public std::runtime_error
{
  public:
    explicit OdwlError(const std::string &what) : std::runtime_error(what)
    {}
};

/** Rejected .odwl loads since process start (or the last reset). */
std::uint64_t odwlRejectedLoads();
void resetOdwlRejectedLoads();

/** One recorded cycle with the phase it landed in. */
struct RecordedCycle
{
    StandbyCycle cycle;
    std::uint32_t phase = 0;
};

/** One device-day expanded to its cycle stream. */
struct RecordedDeviceDay
{
    std::uint64_t deviceId = 0;
    std::uint32_t classIndex = 0;
    std::vector<RecordedCycle> cycles;
};

/** In-memory form of an .odwl file. */
struct OdwlDocument
{
    FleetPopulation population;
    std::vector<RecordedDeviceDay> traces; ///< optional
};

/** Encode to the on-disk byte layout. */
std::vector<std::uint8_t> writeOdwl(const OdwlDocument &doc);

/**
 * Decode and fully validate; throws OdwlError (and counts the
 * rejection) on any defect. Never returns a partial document.
 */
OdwlDocument readOdwl(const std::vector<std::uint8_t> &bytes);

/** File wrappers around writeOdwl()/readOdwl(). */
void writeOdwlFile(const std::string &path, const OdwlDocument &doc);
OdwlDocument readOdwlFile(const std::string &path);

} // namespace odrips

#endif // ODRIPS_WORKLOAD_ODWL_HH
