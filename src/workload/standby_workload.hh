/**
 * @file
 * Connected-standby workload generation.
 *
 * A workload is a sequence of standby cycles: an idle dwell (time spent
 * in the deep idle state until a wake event) followed by an active
 * window (OS kernel maintenance, 100-300 ms in the paper). The active
 * window splits into a frequency-scalable CPU-bound part and a fixed
 * memory/IO-stall part, which is what makes the core-frequency
 * experiment (Fig. 6(b)) non-trivial.
 */

#ifndef ODRIPS_WORKLOAD_STANDBY_WORKLOAD_HH
#define ODRIPS_WORKLOAD_STANDBY_WORKLOAD_HH

#include <string>
#include <vector>

#include "platform/config.hh"
#include "sim/random.hh"
#include "workload/wake_source.hh"

namespace odrips
{

/** One standby cycle of the workload. */
struct StandbyCycle
{
    /** Time in the idle state before the wake event. */
    Tick idleDwell = 0;
    /** CPU-bound work in the active window, in core cycles. */
    std::uint64_t cpuCycles = 0;
    /** Fixed (non-frequency-scalable) stall time. */
    Tick stallTime = 0;
    WakeReason reason = WakeReason::KernelTimer;
    /** External events buffered into this wake by interrupt
     * coalescing (paper Sec. 3, Observation 1). */
    std::uint32_t coalesced = 0;

    /** Active-window duration at a given core frequency. */
    Tick
    activeDuration(double core_hz) const
    {
        const double cpu_seconds =
            static_cast<double>(cpuCycles) / core_hz;
        return secondsToTicks(cpu_seconds) + stallTime;
    }
};

/** A generated (or replayed) trace of standby cycles. */
class StandbyTrace
{
  public:
    std::vector<StandbyCycle> cycles;

    /** Serialize to a simple text format (one cycle per line). */
    std::string serialize() const;

    /** Parse the text format back. */
    static StandbyTrace parse(const std::string &text);

    /** Average idle dwell in seconds. */
    double meanIdleSeconds() const;

    /** Average active duration (at @p core_hz) in seconds. */
    double meanActiveSeconds(double core_hz) const;

    /** Total externally-triggered events absorbed by coalescing. */
    std::uint64_t totalCoalesced() const;
};

/** Generates StandbyTraces from a WorkloadConfig. */
class StandbyWorkloadGenerator
{
  public:
    explicit StandbyWorkloadGenerator(const WorkloadConfig &cfg);

    /** Generate @p count cycles. */
    StandbyTrace generate(std::size_t count);

    /**
     * Generate @p count identical cycles with a fixed dwell and active
     * window — the shape used for the paper's break-even residency
     * sweep (Sec. 7).
     */
    static StandbyTrace fixed(std::size_t count, Tick idle_dwell,
                              Tick active_duration,
                              double scalable_fraction,
                              double reference_core_hz);

  private:
    WorkloadConfig cfg;
    Rng rng;
};

} // namespace odrips

#endif // ODRIPS_WORKLOAD_STANDBY_WORKLOAD_HH
