#include "workload/odwl.hh"

#include <atomic>
#include <cstdio>
#include <utility>

#include "sim/checkpoint/serializer.hh"

namespace odrips
{

namespace
{

constexpr std::uint32_t kOdwlMagic = 0x4C57444F; // "ODWL" little-endian
constexpr std::uint32_t kOdwlVersion = 1;

std::atomic<std::uint64_t> rejectedLoads{0};

void
encodePhase(ckpt::Writer &w, const PhaseSpec &spec)
{
    w.str(spec.name);
    w.f64(spec.hours);
    w.f64(spec.heartbeatPeriodSeconds);
    w.f64(spec.heartbeatJitterFraction);
    w.f64(spec.notificationMeanSeconds);
    w.f64(spec.stormsPerHour);
    w.u32(spec.stormBurst);
    w.f64(spec.stormGapSeconds);
    w.f64(spec.sensorWakesPerHour);
    w.f64(spec.activeMinSeconds);
    w.f64(spec.activeMaxSeconds);
    w.f64(spec.scalableFraction);
    w.f64(spec.coalescingWindowSeconds);
}

PhaseSpec
decodePhase(ckpt::Reader &r)
{
    PhaseSpec spec;
    spec.name = r.str();
    spec.hours = r.f64();
    spec.heartbeatPeriodSeconds = r.f64();
    spec.heartbeatJitterFraction = r.f64();
    spec.notificationMeanSeconds = r.f64();
    spec.stormsPerHour = r.f64();
    spec.stormBurst = r.u32();
    spec.stormGapSeconds = r.f64();
    spec.sensorWakesPerHour = r.f64();
    spec.activeMinSeconds = r.f64();
    spec.activeMaxSeconds = r.f64();
    spec.scalableFraction = r.f64();
    spec.coalescingWindowSeconds = r.f64();

    if (!(spec.hours > 0.0))
        throw OdwlError("odwl phase '" + spec.name +
                        "': hours must be positive");
    if (!(spec.activeMinSeconds >= 0.0) ||
        !(spec.activeMaxSeconds >= spec.activeMinSeconds))
        throw OdwlError("odwl phase '" + spec.name +
                        "': bad active-window range");
    if (!(spec.scalableFraction >= 0.0 && spec.scalableFraction <= 1.0))
        throw OdwlError("odwl phase '" + spec.name +
                        "': scalableFraction outside [0, 1]");
    return spec;
}

std::vector<std::uint8_t>
encodePopulation(const FleetPopulation &pop)
{
    ckpt::Writer w;
    w.u64(pop.seed);
    w.u32(static_cast<std::uint32_t>(pop.classes.size()));
    for (const DeviceClass &cls : pop.classes) {
        w.str(cls.profile.name);
        w.u32(static_cast<std::uint32_t>(cls.profile.phases.size()));
        for (const PhaseSpec &spec : cls.profile.phases)
            encodePhase(w, spec);
        w.b(cls.techniques.wakeupOff);
        w.b(cls.techniques.aonIoGate);
        w.b(cls.techniques.contextOffload);
        w.u8(static_cast<std::uint8_t>(cls.techniques.contextStorage));
        w.f64(cls.weight);
    }
    return w.take();
}

FleetPopulation
decodePopulation(const std::vector<std::uint8_t> &payload)
{
    ckpt::Reader r(payload);
    FleetPopulation pop;
    pop.seed = r.u64();
    const std::uint32_t classCount = r.u32();
    if (classCount == 0)
        throw OdwlError("odwl population has no device classes");
    pop.classes.reserve(classCount);
    for (std::uint32_t i = 0; i < classCount; ++i) {
        DeviceClass cls;
        cls.profile.name = r.str();
        const std::uint32_t phaseCount = r.u32();
        if (phaseCount == 0)
            throw OdwlError("odwl class '" + cls.profile.name +
                            "' has no phases");
        cls.profile.phases.reserve(phaseCount);
        for (std::uint32_t p = 0; p < phaseCount; ++p)
            cls.profile.phases.push_back(decodePhase(r));
        cls.techniques.wakeupOff = r.b();
        cls.techniques.aonIoGate = r.b();
        cls.techniques.contextOffload = r.b();
        const std::uint8_t storage = r.u8();
        if (storage > static_cast<std::uint8_t>(ContextStorage::Emram))
            throw OdwlError("odwl class '" + cls.profile.name +
                            "': context storage out of range");
        cls.techniques.contextStorage =
            static_cast<ContextStorage>(storage);
        // Mirror TechniqueSet::validate() without its fatal() path.
        if (cls.techniques.aonIoGate && !cls.techniques.wakeupOff)
            throw OdwlError("odwl class '" + cls.profile.name +
                            "': AON IO gating requires wake-up "
                            "migration");
        cls.weight = r.f64();
        if (!(cls.weight > 0.0))
            throw OdwlError("odwl class '" + cls.profile.name +
                            "': weight must be positive");
        pop.classes.push_back(std::move(cls));
    }
    r.expectEnd("odwl population");
    return pop;
}

std::vector<std::uint8_t>
encodeTraces(const std::vector<RecordedDeviceDay> &traces)
{
    ckpt::Writer w;
    w.u32(static_cast<std::uint32_t>(traces.size()));
    for (const RecordedDeviceDay &day : traces) {
        w.u64(day.deviceId);
        w.u32(day.classIndex);
        w.u64(day.cycles.size());
        for (const RecordedCycle &rec : day.cycles) {
            w.i64(rec.cycle.idleDwell);
            w.u64(rec.cycle.cpuCycles);
            w.i64(rec.cycle.stallTime);
            w.u8(static_cast<std::uint8_t>(rec.cycle.reason));
            w.u32(rec.cycle.coalesced);
            w.u32(rec.phase);
        }
    }
    return w.take();
}

std::vector<RecordedDeviceDay>
decodeTraces(const std::vector<std::uint8_t> &payload,
             std::size_t classCount)
{
    ckpt::Reader r(payload);
    const std::uint32_t dayCount = r.u32();
    std::vector<RecordedDeviceDay> traces;
    traces.reserve(dayCount);
    for (std::uint32_t i = 0; i < dayCount; ++i) {
        RecordedDeviceDay day;
        day.deviceId = r.u64();
        day.classIndex = r.u32();
        if (day.classIndex >= classCount)
            throw OdwlError("odwl trace references device class " +
                            std::to_string(day.classIndex) +
                            " beyond the population");
        const std::uint64_t cycleCount = r.u64();
        day.cycles.reserve(cycleCount);
        for (std::uint64_t c = 0; c < cycleCount; ++c) {
            RecordedCycle rec;
            rec.cycle.idleDwell = r.i64();
            rec.cycle.cpuCycles = r.u64();
            rec.cycle.stallTime = r.i64();
            const std::uint8_t reason = r.u8();
            if (reason > static_cast<std::uint8_t>(WakeReason::User))
                throw OdwlError("odwl trace wake reason out of range");
            rec.cycle.reason = static_cast<WakeReason>(reason);
            rec.cycle.coalesced = r.u32();
            rec.phase = r.u32();
            if (rec.cycle.idleDwell < 0 || rec.cycle.stallTime < 0)
                throw OdwlError("odwl trace cycle has negative time");
            day.cycles.push_back(rec);
        }
        traces.push_back(std::move(day));
    }
    r.expectEnd("odwl traces");
    return traces;
}

OdwlDocument
parseOdwl(const std::vector<std::uint8_t> &bytes)
{
    ckpt::Reader r(bytes);
    if (r.u32() != kOdwlMagic)
        throw OdwlError("not an .odwl file (bad magic)");
    const std::uint32_t version = r.u32();
    if (version != kOdwlVersion)
        throw OdwlError("unsupported .odwl version " +
                        std::to_string(version));
    const std::uint32_t sectionCount = r.u32();

    bool havePopulation = false;
    std::vector<std::uint8_t> populationPayload;
    bool haveTraces = false;
    std::vector<std::uint8_t> tracesPayload;
    for (std::uint32_t i = 0; i < sectionCount; ++i) {
        const std::string name = r.str();
        const std::uint32_t storedCrc = r.u32();
        std::vector<std::uint8_t> payload = r.blob();
        if (ckpt::crc32(payload.data(), payload.size()) != storedCrc)
            throw OdwlError("odwl section '" + name + "' CRC mismatch");
        if (name == "population") {
            if (havePopulation)
                throw OdwlError("duplicate odwl population section");
            havePopulation = true;
            populationPayload = std::move(payload);
        } else if (name == "traces") {
            if (haveTraces)
                throw OdwlError("duplicate odwl traces section");
            haveTraces = true;
            tracesPayload = std::move(payload);
        } else {
            throw OdwlError("unknown odwl section '" + name + "'");
        }
    }
    r.expectEnd("odwl file");
    if (!havePopulation)
        throw OdwlError("odwl file has no population section");

    OdwlDocument doc;
    doc.population = decodePopulation(populationPayload);
    if (haveTraces)
        doc.traces =
            decodeTraces(tracesPayload, doc.population.classes.size());
    return doc;
}

} // namespace

std::uint64_t
odwlRejectedLoads()
{
    return rejectedLoads.load(std::memory_order_relaxed);
}

void
resetOdwlRejectedLoads()
{
    rejectedLoads.store(0, std::memory_order_relaxed);
}

std::vector<std::uint8_t>
writeOdwl(const OdwlDocument &doc)
{
    ckpt::Writer w;
    w.u32(kOdwlMagic);
    w.u32(kOdwlVersion);
    const bool withTraces = !doc.traces.empty();
    w.u32(withTraces ? 2u : 1u);

    std::vector<std::uint8_t> population = encodePopulation(doc.population);
    w.str("population");
    w.u32(ckpt::crc32(population.data(), population.size()));
    w.blob(population);

    if (withTraces) {
        std::vector<std::uint8_t> traces = encodeTraces(doc.traces);
        w.str("traces");
        w.u32(ckpt::crc32(traces.data(), traces.size()));
        w.blob(traces);
    }
    return w.take();
}

OdwlDocument
readOdwl(const std::vector<std::uint8_t> &bytes)
{
    try {
        return parseOdwl(bytes);
    } catch (const OdwlError &) {
        rejectedLoads.fetch_add(1, std::memory_order_relaxed);
        throw;
    } catch (const ckpt::SnapshotError &err) {
        rejectedLoads.fetch_add(1, std::memory_order_relaxed);
        throw OdwlError(std::string("odwl file truncated: ") + err.what());
    }
}

void
writeOdwlFile(const std::string &path, const OdwlDocument &doc)
{
    const std::vector<std::uint8_t> bytes = writeOdwl(doc);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        throw OdwlError("cannot open '" + path + "' for writing");
    const std::size_t written =
        std::fwrite(bytes.data(), 1, bytes.size(), f);
    const bool closed = std::fclose(f) == 0;
    if (written != bytes.size() || !closed)
        throw OdwlError("short write to '" + path + "'");
}

OdwlDocument
readOdwlFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        rejectedLoads.fetch_add(1, std::memory_order_relaxed);
        throw OdwlError("cannot open '" + path + "'");
    }
    std::vector<std::uint8_t> bytes;
    std::uint8_t chunk[65536];
    std::size_t got = 0;
    while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        bytes.insert(bytes.end(), chunk, chunk + got);
    const bool readError = std::ferror(f) != 0;
    std::fclose(f);
    if (readError) {
        rejectedLoads.fetch_add(1, std::memory_order_relaxed);
        throw OdwlError("read error on '" + path + "'");
    }
    return readOdwl(bytes);
}

} // namespace odrips
