/**
 * @file
 * Parameterized user behavior profiles for fleet campaigns.
 *
 * The paper evaluates one synthetic standby profile (30 s kernel
 * heartbeat, 100-300 ms active); real connected-standby energy is a
 * population distribution over diverse users. A UserProfile describes
 * one user archetype as a sequence of behavior phases (night, commute,
 * work-day, ...), each with its own wake-source mix: the periodic
 * kernel/network heartbeat, Poisson push notifications, notification
 * storms (a burst of closely spaced pushes, e.g. a group chat),
 * and sensor/fingerprint wakes. A FleetPopulation weights several
 * DeviceClasses (profile x TechniqueSet) and maps any device id to its
 * class deterministically, so a campaign never needs a per-device
 * table.
 *
 * DayCycleGenerator streams one device-day of StandbyCycles without
 * allocating: all source state is a handful of scalars, advanced
 * earliest-event-first, with the same coalescing and active-draw idiom
 * as StandbyWorkloadGenerator. Same profile + same Rng => bit-identical
 * cycle stream, which is what the campaign determinism gate leans on.
 */

#ifndef ODRIPS_WORKLOAD_USER_PROFILE_HH
#define ODRIPS_WORKLOAD_USER_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "platform/techniques.hh"
#include "sim/random.hh"
#include "workload/standby_workload.hh"

namespace odrips
{

/** One behavior phase of a user's day (e.g. "night", "commute"). */
struct PhaseSpec
{
    std::string name = "phase";
    /** Phase length; phases repeat cyclically until the day ends. */
    double hours = 24.0;

    /** Periodic kernel/network heartbeat (paper: ~30 s). */
    double heartbeatPeriodSeconds = 30.0;
    /** Uniform jitter as a fraction of the heartbeat period. */
    double heartbeatJitterFraction = 0.05;

    /** Mean interval between push notifications; zero disables. */
    double notificationMeanSeconds = 0.0;

    /** Notification storms: bursts of closely spaced pushes. */
    double stormsPerHour = 0.0;
    std::uint32_t stormBurst = 8;
    double stormGapSeconds = 3.0;

    /** Sensor / fingerprint / lift-to-wake events per hour. */
    double sensorWakesPerHour = 0.0;

    /** Active-window draw (uniform), same shape as WorkloadConfig. */
    double activeMinSeconds = 0.100;
    double activeMaxSeconds = 0.300;
    double scalableFraction = 0.70;

    /** Interrupt-coalescing window before the next heartbeat. */
    double coalescingWindowSeconds = 0.0;
};

/** A user archetype: named sequence of phases. */
struct UserProfile
{
    std::string name = "user";
    std::vector<PhaseSpec> phases;

    /** Occasional notifications, long quiet stretches. */
    static UserProfile lightUser();
    /** Dense pushes plus hourly storms (group-chat style). */
    static UserProfile heavyNotifier();
    /** Night / commute / office phases with distinct wake mixes. */
    static UserProfile commuter();
    /** Active late hours, quiet mornings. */
    static UserProfile nightOwl();
};

/** One weighted slice of the fleet: a profile on a technique config. */
struct DeviceClass
{
    UserProfile profile;
    TechniqueSet techniques;
    double weight = 1.0;
};

/** Weighted mix of device classes plus the population seed. */
struct FleetPopulation
{
    std::vector<DeviceClass> classes;
    std::uint64_t seed = 1;

    /**
     * Deterministic class assignment: a weight-proportional draw from
     * Rng(seed).fork(deviceId), independent of every other device.
     */
    std::size_t classForDevice(std::uint64_t deviceId) const;

    /** The mixed-profile reference population used by bench + gates. */
    static FleetPopulation mixedReference();
};

/**
 * Streams one device-day of StandbyCycles for a profile.
 *
 * All state is fixed-size scalars; next() never allocates and is safe
 * inside the campaign's per-device hot loop.
 */
class DayCycleGenerator
{
  public:
    /** Core frequency the cycle cpuCycles are expressed against. */
    static constexpr double kReferenceHz = 0.8e9;

    DayCycleGenerator(const UserProfile &profile, Rng rng,
                      double day_seconds = 86400.0);

    /**
     * Produce the next cycle; @p phase_index reports which phase the
     * wake landed in. Returns false once the day is fully emitted (the
     * last cycle's idle dwell is clipped exactly at the day boundary).
     */
    bool next(StandbyCycle &out, std::size_t &phase_index);

    /** External wakes absorbed by coalescing so far. */
    std::uint64_t coalescedWakes() const { return coalescedTotal; }

  private:
    void enterPhase(std::size_t index, double start_seconds);
    double drawNotification(double after);
    double drawSensor(double after);
    double drawStormStart(double after);

    const UserProfile *profile;
    Rng rng;
    double daySeconds;

    double cursor = 0.0;     ///< absolute seconds, end of last active
    std::size_t phaseIdx = 0;
    double phaseEnd = 0.0;   ///< absolute end of the current phase

    static constexpr double kNever = 1e18;
    double nextHeartbeat = kNever;
    double nextNotification = kNever;
    double nextSensor = kNever;
    double nextStormStart = kNever;
    double nextStormWake = kNever;
    std::uint32_t stormRemaining = 0;

    std::uint32_t pendingCoalesced = 0;
    std::uint64_t coalescedTotal = 0;
    bool finished = false;
};

} // namespace odrips

#endif // ODRIPS_WORKLOAD_USER_PROFILE_HH
