#include "workload/user_profile.hh"

#include <cmath>

#include "sim/ticks.hh"

namespace odrips
{

namespace
{

PhaseSpec
makePhase(const std::string &name, double hours,
          double notification_mean, double sensor_per_hour,
          double storms_per_hour)
{
    PhaseSpec spec;
    spec.name = name;
    spec.hours = hours;
    spec.notificationMeanSeconds = notification_mean;
    spec.sensorWakesPerHour = sensor_per_hour;
    spec.stormsPerHour = storms_per_hour;
    spec.coalescingWindowSeconds = 3.0;
    return spec;
}

} // namespace

UserProfile
UserProfile::lightUser()
{
    UserProfile p;
    p.name = "light-user";
    p.phases = {makePhase("day", 24.0, 900.0, 1.0, 0.0)};
    return p;
}

UserProfile
UserProfile::heavyNotifier()
{
    UserProfile p;
    p.name = "heavy-notifier";
    PhaseSpec day = makePhase("day", 24.0, 120.0, 4.0, 1.5);
    day.stormBurst = 10;
    day.stormGapSeconds = 2.5;
    p.phases = {day};
    return p;
}

UserProfile
UserProfile::commuter()
{
    UserProfile p;
    p.name = "commuter";
    p.phases = {makePhase("night", 7.0, 1800.0, 0.2, 0.0),
                makePhase("commute", 2.0, 240.0, 6.0, 0.5),
                makePhase("office", 9.0, 300.0, 2.0, 1.0),
                makePhase("evening", 6.0, 600.0, 3.0, 0.25)};
    return p;
}

UserProfile
UserProfile::nightOwl()
{
    UserProfile p;
    p.name = "night-owl";
    p.phases = {makePhase("late-night", 4.0, 180.0, 3.0, 1.0),
                makePhase("sleep", 6.0, 3600.0, 0.1, 0.0),
                makePhase("day", 14.0, 600.0, 2.0, 0.25)};
    return p;
}

std::size_t
FleetPopulation::classForDevice(std::uint64_t deviceId) const
{
    if (classes.size() <= 1)
        return 0;
    double total = 0.0;
    for (const DeviceClass &cls : classes)
        total += cls.weight;
    Rng device = Rng(seed).fork(deviceId);
    const double draw = device.uniform(0.0, total);
    double cumulative = 0.0;
    for (std::size_t i = 0; i < classes.size(); ++i) {
        cumulative += classes[i].weight;
        if (draw < cumulative)
            return i;
    }
    return classes.size() - 1;
}

FleetPopulation
FleetPopulation::mixedReference()
{
    FleetPopulation pop;
    pop.seed = 1;
    pop.classes = {
        {UserProfile::lightUser(), TechniqueSet::odrips(), 0.40},
        {UserProfile::heavyNotifier(), TechniqueSet::baseline(), 0.25},
        {UserProfile::commuter(), TechniqueSet::odrips(), 0.20},
        {UserProfile::nightOwl(), TechniqueSet::wakeupOffOnly(), 0.15},
    };
    return pop;
}

DayCycleGenerator::DayCycleGenerator(const UserProfile &user, Rng stream,
                                     double day_seconds)
    : profile(&user), rng(stream), daySeconds(day_seconds)
{
    if (profile->phases.empty())
        finished = true;
    else
        enterPhase(0, 0.0);
}

void
DayCycleGenerator::enterPhase(std::size_t index, double start_seconds)
{
    phaseIdx = index % profile->phases.size();
    const PhaseSpec &spec = profile->phases[phaseIdx];
    phaseEnd = start_seconds + spec.hours * 3600.0;

    if (spec.heartbeatPeriodSeconds > 0.0) {
        const double jitter =
            rng.uniform(-spec.heartbeatJitterFraction,
                        spec.heartbeatJitterFraction);
        nextHeartbeat =
            start_seconds + spec.heartbeatPeriodSeconds * (1.0 + jitter);
    } else {
        nextHeartbeat = kNever;
    }
    nextNotification = drawNotification(start_seconds);
    nextSensor = drawSensor(start_seconds);
    nextStormStart = drawStormStart(start_seconds);
    nextStormWake = kNever;
    stormRemaining = 0;
}

double
DayCycleGenerator::drawNotification(double after)
{
    const PhaseSpec &spec = profile->phases[phaseIdx];
    if (spec.notificationMeanSeconds <= 0.0)
        return kNever;
    return after + rng.exponential(spec.notificationMeanSeconds);
}

double
DayCycleGenerator::drawSensor(double after)
{
    const PhaseSpec &spec = profile->phases[phaseIdx];
    if (spec.sensorWakesPerHour <= 0.0)
        return kNever;
    return after + rng.exponential(3600.0 / spec.sensorWakesPerHour);
}

double
DayCycleGenerator::drawStormStart(double after)
{
    const PhaseSpec &spec = profile->phases[phaseIdx];
    if (spec.stormsPerHour <= 0.0)
        return kNever;
    return after + rng.exponential(3600.0 / spec.stormsPerHour);
}

// fleet: hotloop
bool
DayCycleGenerator::next(StandbyCycle &out, std::size_t &phase_index)
{
    if (finished)
        return false;
    if (cursor >= daySeconds) {
        finished = true;
        return false;
    }
    for (;;) {
        const PhaseSpec &spec = profile->phases[phaseIdx];

        // A pending storm-start spawns a burst; the wakes themselves
        // are picked up as nextStormWake on the next pass.
        double earliest = nextHeartbeat;
        if (nextNotification < earliest)
            earliest = nextNotification;
        if (nextSensor < earliest)
            earliest = nextSensor;
        if (nextStormStart < earliest)
            earliest = nextStormStart;
        if (nextStormWake < earliest)
            earliest = nextStormWake;

        const double boundary =
            phaseEnd < daySeconds ? phaseEnd : daySeconds;
        if (earliest >= boundary) {
            if (boundary >= daySeconds) {
                // Clip the day exactly: one final idle-only dwell.
                out = StandbyCycle{};
                out.idleDwell = secondsToTicks(daySeconds - cursor);
                out.reason = WakeReason::KernelTimer;
                phase_index = phaseIdx;
                finished = true;
                return true;
            }
            enterPhase(phaseIdx + 1, phaseEnd);
            continue;
        }

        if (earliest == nextStormStart) {
            stormRemaining = spec.stormBurst;
            nextStormWake = nextStormStart;
            nextStormStart = drawStormStart(nextStormStart);
            continue;
        }

        // Identify the firing source with a fixed priority order so
        // exact ties resolve deterministically.
        WakeReason reason = WakeReason::KernelTimer;
        bool isHeartbeat = false;
        if (earliest == nextHeartbeat) {
            isHeartbeat = true;
        } else if (earliest == nextStormWake) {
            reason = WakeReason::Network;
        } else if (earliest == nextNotification) {
            reason = WakeReason::Network;
        } else {
            reason = WakeReason::User;
        }

        // Interrupt coalescing (paper Sec. 3, Observation 1): an
        // external wake close before the next heartbeat is buffered
        // and handled together with it.
        if (!isHeartbeat && spec.coalescingWindowSeconds > 0.0 &&
            nextHeartbeat < kNever &&
            nextHeartbeat - earliest <= spec.coalescingWindowSeconds) {
            ++pendingCoalesced;
            ++coalescedTotal;
            if (earliest == nextStormWake) {
                --stormRemaining;
                nextStormWake = stormRemaining > 0
                                    ? earliest + spec.stormGapSeconds
                                    : kNever;
            } else if (earliest == nextNotification) {
                nextNotification = drawNotification(earliest);
            } else {
                nextSensor = drawSensor(earliest);
            }
            continue;
        }

        std::uint32_t coalesced = 0;
        if (isHeartbeat) {
            coalesced = pendingCoalesced;
            pendingCoalesced = 0;
            const double jitter =
                rng.uniform(-spec.heartbeatJitterFraction,
                            spec.heartbeatJitterFraction);
            nextHeartbeat =
                earliest + spec.heartbeatPeriodSeconds * (1.0 + jitter);
        } else if (earliest == nextStormWake) {
            --stormRemaining;
            nextStormWake = stormRemaining > 0
                                ? earliest + spec.stormGapSeconds
                                : kNever;
        } else if (earliest == nextNotification) {
            nextNotification = drawNotification(earliest);
        } else {
            nextSensor = drawSensor(earliest);
        }

        // Same active-window idiom as StandbyWorkloadGenerator:
        // coalesced events extend the window by 30% each.
        const double active =
            rng.uniform(spec.activeMinSeconds, spec.activeMaxSeconds) *
            (1.0 + 0.3 * coalesced);
        const double wake = earliest > cursor ? earliest : cursor;

        out.idleDwell = secondsToTicks(wake - cursor);
        out.cpuCycles = static_cast<std::uint64_t>(
            active * spec.scalableFraction * kReferenceHz);
        out.stallTime =
            secondsToTicks(active * (1.0 - spec.scalableFraction));
        out.reason = reason;
        out.coalesced = coalesced;
        phase_index = phaseIdx;
        cursor = wake + active;
        return true;
    }
}

} // namespace odrips
