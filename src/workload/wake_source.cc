#include "workload/wake_source.hh"

#include "sim/logging.hh"

namespace odrips
{

const char *
to_string(WakeReason reason)
{
    switch (reason) {
      case WakeReason::KernelTimer: return "kernel-timer";
      case WakeReason::Network: return "network";
      case WakeReason::User: return "user";
    }
    return "?";
}

KernelTimerSource::KernelTimerSource(Tick timer_period,
                                     double jitter_fraction)
    : period(timer_period), jitter(jitter_fraction)
{
    ODRIPS_ASSERT(period > 0, "timer period must be positive");
    ODRIPS_ASSERT(jitter >= 0.0 && jitter < 1.0, "bad jitter fraction");
}

WakeEvent
KernelTimerSource::nextAfter(Tick after, Rng &rng)
{
    Tick interval = period;
    if (jitter > 0.0) {
        const double scale = 1.0 + jitter * (2.0 * rng.uniform() - 1.0);
        interval = static_cast<Tick>(static_cast<double>(period) * scale);
    }
    return WakeEvent{after + interval, WakeReason::KernelTimer};
}

PoissonSource::PoissonSource(WakeReason wake_reason,
                             double mean_interval_seconds)
    : reason(wake_reason), meanSeconds(mean_interval_seconds)
{
    ODRIPS_ASSERT(mean_interval_seconds > 0,
                  "mean wake interval must be positive");
}

WakeEvent
PoissonSource::nextAfter(Tick after, Rng &rng)
{
    const double gap = rng.exponential(meanSeconds);
    return WakeEvent{after + secondsToTicks(gap), reason};
}

WakeEvent
CombinedWakeSource::nextAfter(Tick after, Rng &rng)
{
    ODRIPS_ASSERT(!sources.empty(), "no wake sources configured");
    WakeEvent best = sources.front()->nextAfter(after, rng);
    for (std::size_t i = 1; i < sources.size(); ++i) {
        const WakeEvent candidate = sources[i]->nextAfter(after, rng);
        if (candidate.time < best.time)
            best = candidate;
    }
    return best;
}

} // namespace odrips
