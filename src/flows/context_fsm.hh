/**
 * @file
 * Context save/restore finite state machines (paper Sec. 6.2 / Fig. 4).
 *
 *  - SA FSM: flushes the system-agent context between its S/R SRAM and
 *    the protected DRAM region.
 *  - LLC FSM: ditto for the cores/graphics context (it sits near the
 *    LLC and reuses the LLC-flush datapath).
 *  - Boot FSM: keeps the ~1 KB boot-critical state (PMU, memory
 *    controller, MEE root) in the always-retained Boot SRAM and
 *    restores those blocks first on exit, before any DRAM access.
 *
 * Both transfer FSMs stream through the memory controller, which routes
 * the protected range through the MEE; the reported latencies are what
 * Sec. 6.3 measures (~18 us save / ~13 us restore on DDR3L-1600).
 */

#ifndef ODRIPS_FLOWS_CONTEXT_FSM_HH
#define ODRIPS_FLOWS_CONTEXT_FSM_HH

#include <cstdint>

#include "mem/memory_controller.hh"
#include "mem/nvm.hh"
#include "mem/sram.hh"
#include "platform/context.hh"
#include "security/mee.hh"
#include "sim/named.hh"

namespace odrips
{

/** Outcome of a context transfer. */
struct TransferResult
{
    Tick latency = 0;
    std::uint64_t bytes = 0;
    /** MEE authentication verdict (restores only). */
    bool authentic = true;
    /** Restored bytes match the saved context. */
    bool intact = true;
};

/**
 * One context-transfer FSM moving a region between an on-chip SRAM and
 * the protected DRAM area.
 */
class ContextTransferFsm : public Named
{
  public:
    /**
     * @param name        instance name ("sa_fsm" / "llc_fsm")
     * @param sram        the S/R SRAM holding this region on-chip
     * @param controller  memory controller (routes through the MEE)
     * @param dram_offset byte offset of this region inside the
     *                    protected range
     * @param fsm_overhead fixed sequencing overhead per transfer
     */
    ContextTransferFsm(std::string name, Sram &sram,
                       MemoryController &controller,
                       std::uint64_t dram_offset,
                       Tick fsm_overhead = oneUs / 2);

    /**
     * Save @p region: SRAM -> MEE -> DRAM. The region bytes must
     * already sit in the SRAM (saveToSram puts them there).
     *
     * When incremental saves are enabled and the protected DRAM copy
     * is valid (a previous save completed), only the region's dirty
     * runs are streamed — steady-state cycles cost O(dirty lines) of
     * MEE crypto instead of the full region. The first save, and any
     * save with every line dirty (the default FullRegenerate mutation
     * model), takes the historical full path bit-identically. Clears
     * the region's dirty map on completion.
     */
    TransferResult save(ContextRegion &region, Tick now);

    /**
     * Restore @p region: DRAM -> MEE -> SRAM, verifying both the MEE
     * authentication and the end-to-end content.
     */
    TransferResult restore(ContextRegion &region, Tick now);

    /** Load the region into the SRAM (compute-domain save path). */
    Tick saveToSram(const ContextRegion &region, Tick now);

    /** Read the region back out of the SRAM (baseline restore path). */
    TransferResult restoreFromSram(ContextRegion &region, Tick now);

    /** Enable/disable delta saves (default: ODRIPS_INCREMENTAL env,
     * see incrementalContextEnabled()). */
    void setIncremental(bool on) { incremental = on; }
    bool incrementalEnabled() const { return incremental; }

    /** True once a save completed, i.e. the protected DRAM copy backs
     * the region's clean lines. */
    bool dramCopyValid() const { return dramValid; }

    /** Restore the DRAM-copy-valid flag (checkpoint support; the DRAM
     * contents themselves restore through the memory section). */
    void restoreDramCopyValid(bool valid) { dramValid = valid; }

  private:
    Sram &sram;
    MemoryController &controller;
    std::uint64_t dramOffset; // ckpt: derived
    Tick fsmOverhead; // ckpt: derived
    bool incremental; // ckpt: derived
    bool dramValid = false;
};

/** Boot FSM: persists the boot-critical state in the Boot SRAM. */
class BootFsm : public Named
{
  public:
    BootFsm(std::string name, Sram &boot_sram, Mee &mee,
            MemoryController &controller, Tick restore_latency);

    /**
     * Record the boot context (PMU/MC config plus the MEE root) into
     * the Boot SRAM before power-down.
     */
    Tick save(const ContextRegion &boot_region, Tick now);

    /**
     * Restore the PMU, memory controller, and MEE from the Boot SRAM —
     * the first exit step, required before any protected DRAM access.
     * @return latency; @p intact reports content verification.
     */
    Tick restore(const ContextRegion &boot_region, Tick now,
                 bool &intact);

  private:
    Sram &bootSram;
    Mee &mee;
    MemoryController &controller;
    Tick restoreLatency; // ckpt: derived
};

/** Direct save/restore into an eMRAM macro (ODRIPS-MRAM). */
class EmramContextPath : public Named
{
  public:
    EmramContextPath(std::string name, Emram &emram);

    TransferResult save(const ContextRegion &sa, const ContextRegion &cores,
                        Tick now);
    TransferResult restore(ContextRegion &sa, ContextRegion &cores,
                           Tick now);

  private:
    Emram &emram;
};

} // namespace odrips

#endif // ODRIPS_FLOWS_CONTEXT_FSM_HH
