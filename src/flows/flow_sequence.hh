/**
 * @file
 * Ordered firmware flow execution.
 *
 * The PMU orchestrates DRIPS entry/exit as an ordered sequence of steps
 * (Sec. 2.2). A FlowStep performs its side effects at its start tick
 * and returns its duration (durations may depend on the start tick —
 * e.g. waiting for a 32 kHz clock edge). The sequence executes on the
 * event queue, so measurement events interleave naturally.
 */

#ifndef ODRIPS_FLOWS_FLOW_SEQUENCE_HH
#define ODRIPS_FLOWS_FLOW_SEQUENCE_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/ticks.hh"

namespace odrips
{

/** One step of a firmware flow. */
struct FlowStep
{
    std::string name;
    /** Perform the step's side effects at @p start; return duration. */
    std::function<Tick(Tick start)> run;
};

/** A FlowStep with a fixed duration and a side-effect action. */
FlowStep makeStep(std::string name, Tick duration,
                  std::function<void(Tick)> action = {});

/** Timing record of one executed step. */
struct StepRecord
{
    std::string name;
    Tick start = 0;
    Tick duration = 0;
};

/** Result of a completed flow. */
struct FlowResult
{
    Tick started = 0;
    Tick completed = 0;
    std::vector<StepRecord> steps;

    Tick latency() const { return completed - started; }

    /** Duration of the named step (0 if absent). */
    Tick stepDuration(const std::string &name) const;
};

/** An ordered sequence of flow steps. */
class FlowSequence
{
  public:
    explicit FlowSequence(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    void
    add(FlowStep step)
    {
        steps.push_back(std::move(step));
    }

    void
    addFixed(std::string step_name, Tick duration,
             std::function<void(Tick)> action = {})
    {
        add(makeStep(std::move(step_name), duration, std::move(action)));
    }

    std::size_t size() const { return steps.size(); }

    /**
     * Execute all steps back-to-back on the event queue, starting now.
     * Runs the queue until the flow completes (other pending events
     * interleave). @return the timing record.
     */
    FlowResult execute(EventQueue &eq) const;

  private:
    std::string name_;
    std::vector<FlowStep> steps;
};

} // namespace odrips

#endif // ODRIPS_FLOWS_FLOW_SEQUENCE_HH
