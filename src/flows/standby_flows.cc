#include "flows/standby_flows.hh"

namespace odrips
{

StandbyFlows::StandbyFlows(Platform &platform,
                           const TechniqueSet &techniques)
    : Named(platform.name() + ".flows"),
      p(platform), tech(techniques),
      saFsm(p.name() + ".sa_fsm", p.processor.saSram,
            *p.memoryController, 0),
      llcFsm(p.name() + ".llc_fsm", p.processor.coresSram,
             *p.memoryController, p.cfg.saContextBytes),
      bootFsm(p.name() + ".boot_fsm", p.processor.bootSram, *p.mee,
              *p.memoryController, p.cfg.timings.bootFsmRestore),
      emramPath(p.name() + ".emram_path", *p.emram)
{
    tech.validate();

    if (tech.aonIoGate) {
        p.chipset.claimOdripsPins();
        fet = std::make_unique<FetGate>(
            p.name() + ".aon_fet", p.processor.aonIos, p.chipset.gpios,
            p.chipset.fetControlPin, &p.board.fetLeakage, 0.003,
            p.cfg.timings.fetSwitch);
        // The EC thermal line moves to a chipset GPIO sampled with the
        // 32 kHz clock (Sec. 5.2).
        thermal = std::make_unique<ThermalMonitor>(
            p.name() + ".thermal_monitor", p.chipset.gpios,
            p.chipset.thermalPin, p.chipset.slowClock);
    }

    if (tech.wakeupOff) {
        // One-time Step calibration after reset (Sec. 4.1.3). The
        // calibration itself takes tens of seconds of wall-clock but
        // happens once per boot, outside the standby cycles.
        StepCalibrator calibrator(p.board.xtal24, p.board.xtal32);
        const unsigned f = StepCalibrator::requiredFractionBits(
            p.board.xtal24.nominalFrequency(),
            p.board.xtal32.nominalFrequency(),
            p.cfg.timerPrecisionCycles);
        calib = calibrator.calibrate(f);
        p.chipset.wakeTimer.applyCalibration(*calib);
    }
}

Milliwatts
StandbyFlows::idleBatteryPower() const
{
    ODRIPS_ASSERT(idle, name(), ": idle power read while not idle");
    return p.batteryPower();
}

void
StandbyFlows::applyFinalIdleLevels(Tick now)
{
    const DripsPowerBudget &dp = p.cfg.dripsPower;

    p.processor.transition.setPower(Milliwatts::zero(), now);
    p.processor.pmuActive.setPower(Milliwatts::zero(), now);
    p.processor.systemAgent.setPower(Milliwatts::zero(), now);
    p.processor.llc.setPower(Milliwatts::zero(), now);
    p.processor.coresGfx.setPower(Milliwatts::zero(), now);

    // Wake monitoring stays on the processor only in the baseline.
    p.processor.wakeTimer.setPower(
        tech.wakeupOff ? Milliwatts::zero() : dp.procWakeTimer, now);

    if (tech.contextOffload) {
        // With eMRAM the NVM replaces the SRAM arrays outright, so
        // only control/range-register retention remains.
        const double residual =
            tech.contextStorage == ContextStorage::Emram
                ? p.cfg.emramResidualFraction
                : p.cfg.srSramResidualFraction;
        p.processor.srResidual.setPower(
            (dp.srSramSa + dp.srSramCores) * residual, now);
    } else {
        p.processor.srResidual.setPower(Milliwatts::zero(), now);
    }

    p.chipset.applyIdlePower(now, tech.wakeupOff);
    p.board.applyIdlePower(now);
}

FlowSequence
StandbyFlows::buildEntryFlow()
{
    const FlowTimings &t = p.cfg.timings;
    const Milliwatts transition = p.cfg.activePower.transitionNominal;
    FlowSequence flow(name() + ".entry");

    // 1. Compute domains enter their deepest state; their context is
    //    saved into the cores/GFX S/R SRAM (Sec. 2.2).
    flow.add({"compute-context-save", [this, transition](Tick now) {
        p.processor.applyComputeIdle(now);
        p.processor.transition.setPower(transition, now);
        p.memory->setActiveTraffic(0.0, now);
        return llcFsm.saveToSram(p.processor.context.cores(), now);
    }});

    // 2. PMU evaluates LTR/TNTE and selects DRIPS as the target state.
    flow.addFixed("firmware-decision", t.firmwareDecision);

    // Technique firmware negotiation (runs at transition power; this
    // is the bulk of each technique's energy overhead).
    if (tech.wakeupOff)
        flow.addFixed("wakeup-entry-firmware", t.wakeupEntryFirmware);
    if (tech.aonIoGate)
        flow.addFixed("aon-gate-entry-firmware", t.aonGateEntryFirmware);
    if (tech.contextOffload)
        flow.addFixed("ctx-entry-firmware", t.ctxEntryFirmware);

    // 3. Flush the LLC into DRAM (entry step 1 of Sec. 2.2).
    flow.add({"llc-flush", [this](Tick) {
        const double dirty_bytes =
            static_cast<double>(p.cfg.llcBytes) * p.cfg.llcDirtyFraction;
        return secondsToTicks(dirty_bytes / p.cfg.mainMemoryBandwidth() +
                              2e-6);
    }});

    // 4. Compute-domain voltage regulators off (entry step 2).
    flow.add({"vr-compute-off", [this, t](Tick now) {
        p.processor.llc.setPower(Milliwatts::zero(), now);
        return t.vrRampDown;
    }});

    // 5. SA context into the SA S/R SRAM (entry step 3).
    flow.add({"sa-context-save", [this](Tick now) {
        return saFsm.saveToSram(p.processor.context.sa(), now);
    }});

    // Technique 3: flush both context regions off-chip, save the boot
    // subset, then power the S/R SRAMs off entirely.
    if (tech.contextOffload) {
        // The context flush runs with only the memory path powered
        // (SA + memory controller + MEE); compute rails are already
        // down, so only a fraction of the fabric burns power.
        flow.add({"memory-path-power", [this, transition](Tick now) {
            p.processor.transition.setPower(transition * 0.35, now);
            return Tick{0};
        }});
        if (tech.contextStorage == ContextStorage::Dram) {
            flow.add({"ctx-flush-sa", [this](Tick now) {
                const TransferResult r =
                    saFsm.save(p.processor.context.sa(), now);
                record.contextSave = r;
                return r.latency;
            }});
            flow.add({"ctx-flush-cores", [this](Tick now) {
                const TransferResult r =
                    llcFsm.save(p.processor.context.cores(), now);
                if (record.contextSave) {
                    record.contextSave->latency += r.latency;
                    record.contextSave->bytes += r.bytes;
                }
                return r.latency;
            }});
            flow.add({"boot-context-save", [this](Tick now) {
                return bootFsm.save(p.processor.context.boot(), now);
            }});
        } else if (tech.contextStorage == ContextStorage::Emram) {
            flow.add({"ctx-emram-save", [this](Tick now) {
                const TransferResult r = emramPath.save(
                    p.processor.context.sa(), p.processor.context.cores(),
                    now);
                record.contextSave = r;
                return r.latency;
            }});
        }
        flow.add({"sr-srams-off", [this](Tick now) {
            p.processor.saSram.setState(SramState::Off, now);
            p.processor.coresSram.setState(SramState::Off, now);
            return oneUs;
        }});
    } else {
        // Baseline: the SRAMs drop to retention voltage.
        flow.add({"sr-srams-retention", [this](Tick now) {
            p.processor.saSram.setState(SramState::Retention, now);
            p.processor.coresSram.setState(SramState::Retention, now);
            return oneUs;
        }});
    }

    // 6. DRAM into self-refresh via CKE (entry step 4); with a DRAM
    //    context the MEE must write back its cached metadata first.
    flow.add({"dram-self-refresh", [this](Tick now) {
        Tick latency = 0;
        if (tech.contextOffload &&
            tech.contextStorage == ContextStorage::Dram) {
            latency += p.mee->flush(now);
            p.mee->powerOff();
            p.memoryController->setPowered(false);
        }
        latency += p.memory->enterRetention(now + latency);
        return latency;
    }});

    // 7. Technique 1: migrate the timer to the chipset and switch to
    //    the slow clock (entry step 5 replaces "keep 24 MHz running").
    if (tech.wakeupOff) {
        flow.add({"timer-migrate", [this, transition](Tick now) {
            // By this point only the PMU fabric slice is still up.
            p.processor.transition.setPower(transition * 0.25, now);
            // Main timer value travels over the PML.
            const PmlTransfer xfer = p.pml.transfer(2, now);
            p.chipset.wakeTimer.loadFromProcessor(
                p.processor.tsc.valueAt(now), xfer.delivered);
            p.processor.tsc.halt(xfer.delivered);

            // Switch counting to the 32 kHz slow timer; this waits for
            // a slow-clock rising edge and then kills the 24 MHz XTAL.
            const HandoverRecord rec =
                p.chipset.wakeTimer.switchToSlow(xfer.delivered);
            record.toSlow = rec;

            p.board.syncXtalPower(rec.completed);
            return rec.completed - now;
        }});
    }

    // 8. Technique 2: the chipset takes the IO functions and opens the
    //    FET, power-gating the processor's AON IOs.
    if (tech.aonIoGate) {
        flow.add({"aon-io-gate", [this](Tick now) {
            p.pml.setUp(false);
            return fet->open(now);
        }});
    }

    // 9. PMU rail off and power-gating (entry step 6); power decays
    //    through the gating sequence.
    flow.add({"pmu-gate", [this, t, transition](Tick now) {
        p.processor.transition.setPower(transition * 0.25, now);
        p.processor.systemAgent.setPower(Milliwatts::zero(), now);
        return t.pmuGate;
    }});

    flow.add({"idle-entered", [this](Tick now) {
        applyFinalIdleLevels(now);
        return Tick{0};
    }});

    return flow;
}

Tick
StandbyFlows::wakeDetectLatency(WakeReason reason, Tick now) const
{
    const Tick base = p.cfg.timings.wakeDetect;
    if (!tech.wakeupOff) {
        // Baseline: continuous monitoring on the 24 MHz clock; the
        // sampling granularity (~42 ns) is negligible.
        return base;
    }
    // ODRIPS: every wake source is observed on 32 kHz edges. Timer
    // wakes are already edge-aligned by the slow timer; external
    // events land mid-period and wait for the next edge.
    switch (reason) {
      case WakeReason::KernelTimer:
        return base;
      case WakeReason::Network:
        return p.chipset.slowClock.nextEdge(now) - now + base;
      case WakeReason::User:
        return p.chipset.slowClock.nextEdge(now) - now + base;
    }
    return base;
}

FlowSequence
StandbyFlows::buildExitFlow(WakeReason reason)
{
    const FlowTimings &t = p.cfg.timings;
    const Milliwatts transition = p.cfg.activePower.transitionNominal;
    FlowSequence flow(name() + ".exit");

    // 1. The wake hub (chipset in ODRIPS, PMU in baseline) detects the
    //    wake event; external events offloaded to the chipset are
    //    sampled with the 32 kHz clock while in ODRIPS.
    flow.add({"wake-detect", [this, reason](Tick now) {
        Tick latency;
        if (thermal && tech.wakeupOff &&
            reason != WakeReason::KernelTimer &&
            thermal->lineAsserted()) {
            // Offloaded EC line, sampled on the next 32 kHz edge.
            latency = thermal->detectionTick(now) - now +
                      p.cfg.timings.wakeDetect;
        } else {
            latency = wakeDetectLatency(reason, now);
        }
        record.wakeReason = reason;
        record.wakeDetectLatency = latency;
        return latency;
    }});

    // 2. Technique 1: restart the 24 MHz crystal and hand counting
    //    back to the fast timer.
    if (tech.wakeupOff) {
        flow.add({"timer-to-fast", [this](Tick now) {
            const HandoverRecord rec =
                p.chipset.wakeTimer.switchToFast(now);
            record.toFast = rec;
            p.board.syncXtalPower(now); // crystal restarting draws power
            p.chipset.applyIdlePower(rec.completed, false);
            return rec.completed - now;
        }});
    }

    // 3. Technique 2: close the FET, restoring the AON IO rail, then
    //    bring the PML back up.
    if (tech.aonIoGate) {
        flow.add({"aon-io-ungate", [this](Tick now) {
            const Tick latency = fet->close(now);
            p.pml.setUp(true);
            return latency;
        }});
    }

    // 4. Technique 1: deliver the timer value back to the processor
    //    over the PML (with the deterministic-latency compensation).
    if (tech.wakeupOff) {
        flow.add({"timer-to-processor", [this](Tick now) {
            const PmlTransfer xfer = p.pml.transfer(2, now);
            p.processor.tsc.load(
                p.chipset.wakeTimer.deliverToProcessor(now),
                xfer.delivered);
            return xfer.delivered - now;
        }});
    }

    // 5. Boot FSM: restore PMU, memory controller, and MEE state from
    //    the Boot SRAM — before any protected DRAM access (Sec. 6.2).
    if (tech.contextOffload &&
        tech.contextStorage == ContextStorage::Dram) {
        flow.add({"boot-fsm-restore", [this](Tick now) {
            bool intact = true;
            const Tick latency =
                bootFsm.restore(p.processor.context.boot(), now, intact);
            record.contextIntact = record.contextIntact && intact;
            return latency;
        }});
    }

    // 6. The SA/memory rail comes up first: the context must be back
    //    before the compute domains can be restored.
    flow.add({"sa-rail-up", [this, transition](Tick now) {
        p.processor.transition.setPower(transition * 0.35, now);
        p.processor.pmuActive.setPower(p.cfg.activePower.pmu, now);
        return 10 * oneUs;
    }});

    // 7. DRAM leaves self-refresh (reverse of entry step 4).
    flow.add({"dram-exit-self-refresh", [this](Tick now) {
        return p.memory->exitRetention(now);
    }});

    // 8. Context restore.
    if (tech.contextOffload) {
        if (tech.contextStorage == ContextStorage::Dram) {
            flow.add({"ctx-restore-sa", [this](Tick now) {
                p.processor.saSram.setState(SramState::Active, now);
                const TransferResult r =
                    saFsm.restore(p.processor.context.sa(), now);
                record.contextRestore = r;
                record.contextIntact = record.contextIntact && r.intact;
                return r.latency;
            }});
            flow.add({"ctx-restore-cores", [this](Tick now) {
                p.processor.coresSram.setState(SramState::Active, now);
                const TransferResult r =
                    llcFsm.restore(p.processor.context.cores(), now);
                if (record.contextRestore) {
                    record.contextRestore->latency += r.latency;
                    record.contextRestore->bytes += r.bytes;
                    record.contextRestore->authentic =
                        record.contextRestore->authentic && r.authentic;
                }
                record.contextIntact = record.contextIntact && r.intact;
                return r.latency;
            }});
        } else if (tech.contextStorage == ContextStorage::Emram) {
            flow.add({"ctx-emram-restore", [this](Tick now) {
                p.processor.saSram.setState(SramState::Active, now);
                p.processor.coresSram.setState(SramState::Active, now);
                const TransferResult r = emramPath.restore(
                    p.processor.context.sa(), p.processor.context.cores(),
                    now);
                record.contextRestore = r;
                record.contextIntact = record.contextIntact && r.intact;
                return r.latency;
            }});
        }
    } else {
        flow.add({"sa-restore-from-sram", [this](Tick now) {
            p.processor.saSram.setState(SramState::Active, now);
            const TransferResult r = saFsm.restoreFromSram(
                p.processor.context.sa(), now);
            record.contextIntact = record.contextIntact && r.intact;
            return r.latency;
        }});
        flow.add({"cores-restore-from-sram", [this](Tick now) {
            p.processor.coresSram.setState(SramState::Active, now);
            const TransferResult r = llcFsm.restoreFromSram(
                p.processor.context.cores(), now);
            record.contextIntact = record.contextIntact && r.intact;
            return r.latency;
        }});
    }

    // 9. Main (compute) voltage regulators ramp back up.
    flow.add({"vr-ramp-up", [this, t, transition](Tick now) {
        p.processor.transition.setPower(transition, now);
        return t.vrRampUp;
    }});

    // Technique exit firmware (re-arming, state bookkeeping).
    if (tech.wakeupOff)
        flow.addFixed("wakeup-exit-firmware", t.wakeupExitFirmware);
    if (tech.aonIoGate)
        flow.addFixed("aon-gate-exit-firmware", t.aonGateExitFirmware);
    if (tech.contextOffload)
        flow.addFixed("ctx-exit-firmware", t.ctxExitFirmware);

    // 9. Cores out of their deep state; platform back at C0 levels.
    flow.add({"platform-active", [this](Tick now) {
        p.processor.transition.setPower(Milliwatts::zero(), now);
        p.processor.applyActivePower(now);
        p.chipset.applyActivePower(now);
        p.board.applyActivePower(now);
        p.memory->setActiveTraffic(
            p.cfg.activePower.activeMemoryTraffic, now);
        return Tick{0};
    }});

    return flow;
}

FlowResult
StandbyFlows::enterIdle()
{
    ODRIPS_ASSERT(!idle, name(), ": already idle");
    record = CycleRecord{};
    const FlowSequence flow = buildEntryFlow();
    record.entry = flow.execute(p.eq);
    idle = true;
    return record.entry;
}

FlowResult
StandbyFlows::exitIdle(WakeReason reason)
{
    ODRIPS_ASSERT(idle, name(), ": not idle");
    const FlowSequence flow = buildExitFlow(reason);
    record.exit = flow.execute(p.eq);
    idle = false;
    return record.exit;
}

namespace
{

void
saveFlowResult(ckpt::Writer &w, const FlowResult &f)
{
    w.i64(f.started);
    w.i64(f.completed);
    w.u32(static_cast<std::uint32_t>(f.steps.size()));
    for (const StepRecord &s : f.steps) {
        w.str(s.name);
        w.i64(s.start);
        w.i64(s.duration);
    }
}

FlowResult
loadFlowResult(ckpt::Reader &r)
{
    FlowResult f;
    f.started = r.i64();
    f.completed = r.i64();
    const std::uint32_t count = r.u32();
    f.steps.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        StepRecord s;
        s.name = r.str();
        s.start = r.i64();
        s.duration = r.i64();
        f.steps.push_back(std::move(s));
    }
    return f;
}

void
saveTransfer(ckpt::Writer &w, const std::optional<TransferResult> &t)
{
    w.b(t.has_value());
    if (!t)
        return;
    w.i64(t->latency);
    w.u64(t->bytes);
    w.b(t->authentic);
    w.b(t->intact);
}

std::optional<TransferResult>
loadTransfer(ckpt::Reader &r)
{
    if (!r.b())
        return std::nullopt;
    TransferResult t;
    t.latency = r.i64();
    t.bytes = r.u64();
    t.authentic = r.b();
    t.intact = r.b();
    return t;
}

void
saveHandover(ckpt::Writer &w, const std::optional<HandoverRecord> &h)
{
    w.b(h.has_value());
    if (!h)
        return;
    w.i64(h->requested);
    w.i64(h->edge);
    w.i64(h->completed);
    w.u64(h->value);
}

std::optional<HandoverRecord>
loadHandover(ckpt::Reader &r)
{
    if (!r.b())
        return std::nullopt;
    HandoverRecord h;
    h.requested = r.i64();
    h.edge = r.i64();
    h.completed = r.i64();
    h.value = r.u64();
    return h;
}

} // namespace

void
StandbyFlows::saveState(ckpt::Writer &w) const
{
    saveFlowResult(w, record.entry);
    saveFlowResult(w, record.exit);
    saveTransfer(w, record.contextSave);
    saveTransfer(w, record.contextRestore);
    saveHandover(w, record.toSlow);
    saveHandover(w, record.toFast);
    w.u8(static_cast<std::uint8_t>(record.wakeReason));
    w.i64(record.wakeDetectLatency);
    w.b(record.contextIntact);

    w.b(idle);
    w.b(saFsm.dramCopyValid());
    w.b(llcFsm.dramCopyValid());

    w.b(thermal != nullptr);
    if (thermal)
        w.i64(thermal->assertionTick());
}

void
StandbyFlows::loadState(ckpt::Reader &r)
{
    record.entry = loadFlowResult(r);
    record.exit = loadFlowResult(r);
    record.contextSave = loadTransfer(r);
    record.contextRestore = loadTransfer(r);
    record.toSlow = loadHandover(r);
    record.toFast = loadHandover(r);
    const std::uint8_t reason = r.u8();
    if (reason > static_cast<std::uint8_t>(WakeReason::User))
        throw ckpt::SnapshotError("wake reason out of range");
    record.wakeReason = static_cast<WakeReason>(reason);
    record.wakeDetectLatency = r.i64();
    record.contextIntact = r.b();

    idle = r.b();
    saFsm.restoreDramCopyValid(r.b());
    llcFsm.restoreDramCopyValid(r.b());

    if (r.b() != (thermal != nullptr))
        throw ckpt::SnapshotError("thermal-monitor presence mismatch");
    if (thermal)
        thermal->restoreAssertionTick(r.i64());
}

} // namespace odrips
