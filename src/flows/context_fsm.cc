#include "flows/context_fsm.hh"

#include <algorithm>

#include "platform/config.hh"
#include "sim/logging.hh"

namespace odrips
{

namespace
{

/** 64 B aligned length covering @p n bytes. */
std::uint64_t
padTo64(std::uint64_t n)
{
    return (n + 63) & ~std::uint64_t{63};
}

} // namespace

ContextTransferFsm::ContextTransferFsm(std::string name, Sram &ctx_sram,
                                       MemoryController &mem_controller,
                                       std::uint64_t dram_offset,
                                       Tick fsm_overhead)
    : Named(std::move(name)), sram(ctx_sram), controller(mem_controller),
      dramOffset(dram_offset), fsmOverhead(fsm_overhead),
      incremental(incrementalContextEnabled())
{
}

Tick
ContextTransferFsm::saveToSram(const ContextRegion &region, Tick now)
{
    (void)now;
    ODRIPS_ASSERT(region.bytes.size() <= sram.capacityBytes(),
                  name(), ": region larger than its S/R SRAM");
    return sram.write(0, region.bytes.data(), region.bytes.size());
}

TransferResult
ContextTransferFsm::restoreFromSram(ContextRegion &region, Tick now)
{
    (void)now;
    TransferResult r;
    r.bytes = region.bytes.size();
    const std::uint64_t expected = region.checksum();
    r.latency = sram.read(0, region.bytes.data(), region.bytes.size());
    r.intact = region.checksum() == expected;
    return r;
}

TransferResult
ContextTransferFsm::save(ContextRegion &region, Tick now)
{
    TransferResult r;
    const std::uint64_t len = region.bytes.size();
    const RangeRegister &range = controller.protectedRange();
    const std::uint64_t base = range.base + dramOffset;

    // Delta saves need a valid DRAM copy under the clean lines; an
    // all-dirty map would coalesce to one full-region run anyway, so
    // take the (identical) historical path explicitly.
    const bool delta =
        incremental && dramValid && !region.dirty.allDirty();

    if (!delta) {
        r.bytes = len;

        // Stream out of the SRAM...
        std::vector<std::uint8_t> buffer(padTo64(len), 0);
        const Tick sram_latency = sram.read(0, buffer.data(), len);

        // ... and through the memory controller into the protected
        // range.
        const RoutedAccess routed =
            controller.write(base, buffer.data(), buffer.size(), now);
        ODRIPS_ASSERT(routed.secure,
                      name(), ": context save bypassed the MEE");

        // The FSM pipelines SRAM reads with DRAM writes; the slower
        // side dominates, plus a fixed sequencing overhead.
        r.latency =
            std::max(sram_latency, routed.result.latency) + fsmOverhead;
    } else {
        // Stream only the dirty runs. Each run pipelines like the full
        // path (slower of SRAM read and MEE/DRAM write); runs are
        // sequenced back to back under one FSM overhead.
        Tick sram_total = 0;
        Tick dram_total = 0;
        std::uint64_t moved = 0;
        std::vector<std::uint8_t> buffer;
        for (const DirtyLineMap::Run &run : region.dirty.runs()) {
            const std::uint64_t off =
                run.firstLine * DirtyLineMap::lineBytes;
            const std::uint64_t run_len = std::min<std::uint64_t>(
                run.lineCount * DirtyLineMap::lineBytes, len - off);
            buffer.assign(padTo64(run_len), 0);
            sram_total += sram.read(off, buffer.data(), run_len);
            const RoutedAccess routed = controller.write(
                base + off, buffer.data(), buffer.size(), now);
            ODRIPS_ASSERT(routed.secure,
                          name(), ": context save bypassed the MEE");
            dram_total += routed.result.latency;
            moved += run_len;
        }
        r.bytes = moved;
        r.latency = std::max(sram_total, dram_total) + fsmOverhead;
    }

    region.dirty.clear();
    dramValid = true;
    return r;
}

TransferResult
ContextTransferFsm::restore(ContextRegion &region, Tick now)
{
    TransferResult r;
    const std::uint64_t len = region.bytes.size();
    r.bytes = len;

    const std::uint64_t expected = region.checksum();

    const RangeRegister &range = controller.protectedRange();
    const std::uint64_t addr = range.base + dramOffset;
    std::vector<std::uint8_t> buffer(padTo64(len), 0);
    const RoutedAccess routed =
        controller.read(addr, buffer.data(), buffer.size(), now);
    ODRIPS_ASSERT(routed.secure,
                  name(), ": context restore bypassed the MEE");
    r.authentic = routed.authentic;

    // Back into the SRAM, then into the architectural state.
    const Tick sram_latency = sram.write(0, buffer.data(), len);
    std::copy_n(buffer.begin(), len, region.bytes.begin());

    r.intact = r.authentic && region.checksum() == expected;
    r.latency = std::max(routed.result.latency, sram_latency) + fsmOverhead;

    // A verified restore leaves the region equal to its DRAM copy, so
    // the next save can be a pure delta. A failed one proves nothing —
    // force the next save back to a full one.
    if (r.intact)
        region.dirty.clear();
    else
        region.dirty.markAll();
    return r;
}

BootFsm::BootFsm(std::string name, Sram &boot_sram, Mee &mee_engine,
                 MemoryController &mem_controller, Tick restore_latency)
    : Named(std::move(name)), bootSram(boot_sram), mee(mee_engine),
      controller(mem_controller), restoreLatency(restore_latency)
{
}

Tick
BootFsm::save(const ContextRegion &boot_region, Tick now)
{
    // Boot context layout: [MEE root | PMU/MC state...]. The MEE root
    // (counter + key) must survive so restored context stays fresh.
    std::uint8_t root[MeeRootState::storageBytes];
    mee.exportRoot().serialize(root);

    ODRIPS_ASSERT(boot_region.bytes.size() + sizeof(root) <=
                      bootSram.capacityBytes(),
                  name(), ": boot context exceeds Boot SRAM");

    bootSram.setState(SramState::Active, now);
    Tick latency = bootSram.write(0, root, sizeof(root));
    latency += bootSram.write(sizeof(root), boot_region.bytes.data(),
                              boot_region.bytes.size());
    bootSram.setState(SramState::Retention, now + latency);
    return latency;
}

Tick
BootFsm::restore(const ContextRegion &boot_region, Tick now, bool &intact)
{
    const std::uint64_t expected = boot_region.checksum();

    bootSram.setState(SramState::Active, now);
    std::uint8_t root[MeeRootState::storageBytes];
    Tick latency = bootSram.read(0, root, sizeof(root));

    std::vector<std::uint8_t> state(boot_region.bytes.size());
    latency += bootSram.read(sizeof(root), state.data(), state.size());
    bootSram.setState(SramState::Retention, now);

    // Bring the MEE and the memory controller back to life.
    mee.importRoot(MeeRootState::deserialize(root));
    controller.setPowered(true);

    ContextRegion scratch;
    scratch.bytes = std::move(state);
    intact = scratch.checksum() == expected;
    return latency + restoreLatency;
}

EmramContextPath::EmramContextPath(std::string name, Emram &emram_device)
    : Named(std::move(name)), emram(emram_device)
{
}

TransferResult
EmramContextPath::save(const ContextRegion &sa, const ContextRegion &cores,
                       Tick now)
{
    TransferResult r;
    r.bytes = sa.bytes.size() + cores.bytes.size();
    emram.setPowered(true, now);
    r.latency = emram.write(0, sa.bytes.data(), sa.bytes.size());
    r.latency += emram.write(sa.bytes.size(), cores.bytes.data(),
                             cores.bytes.size());
    emram.setPowered(false, now + r.latency);
    return r;
}

TransferResult
EmramContextPath::restore(ContextRegion &sa, ContextRegion &cores,
                          Tick now)
{
    TransferResult r;
    r.bytes = sa.bytes.size() + cores.bytes.size();
    const std::uint64_t expected_sa = sa.checksum();
    const std::uint64_t expected_cores = cores.checksum();

    emram.setPowered(true, now);
    r.latency = emram.read(0, sa.bytes.data(), sa.bytes.size());
    r.latency += emram.read(sa.bytes.size(), cores.bytes.data(),
                            cores.bytes.size());
    emram.setPowered(false, now + r.latency);

    r.intact = sa.checksum() == expected_sa &&
               cores.checksum() == expected_cores;
    return r;
}

} // namespace odrips
