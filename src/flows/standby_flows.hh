/**
 * @file
 * DRIPS / ODRIPS entry and exit flows.
 *
 * Implements the six-step baseline entry flow and its exit counterpart
 * (paper Sec. 2.2), extended by the three ODRIPS techniques:
 *
 *  - WAKE-UP-OFF: after the platform is otherwise down, the main timer
 *    migrates over the PML into the chipset's fast timer, counting
 *    switches to the 32 kHz slow timer on a slow-clock edge, and the
 *    24 MHz crystal turns off (Sec. 4, Fig. 3).
 *  - AON-IO-GATE: the chipset takes over the thermal/PML/VR-serial/
 *    debug IO functions and opens the board FET, cutting the
 *    processor's AON IO rail (Sec. 5).
 *  - CTX offload: the SA/LLC FSMs flush the ~200 KB context through
 *    the MEE into protected DRAM (or into eMRAM), the Boot FSM saves
 *    the ~1 KB boot subset, and the S/R SRAMs power off (Sec. 6).
 *
 * Exit reverses everything in the required order (Boot FSM before any
 * protected DRAM access; IO ungating before PML traffic).
 */

#ifndef ODRIPS_FLOWS_STANDBY_FLOWS_HH
#define ODRIPS_FLOWS_STANDBY_FLOWS_HH

#include <memory>
#include <optional>

#include "flows/context_fsm.hh"
#include "flows/flow_sequence.hh"
#include "io/fet_gate.hh"
#include "platform/platform.hh"
#include "sim/checkpoint/serializer.hh"
#include "io/thermal_monitor.hh"
#include "platform/techniques.hh"
#include "timing/step_calibrator.hh"
#include "workload/wake_source.hh"

namespace odrips
{

/** Records from the most recent entry/exit pair. */
struct CycleRecord
{
    FlowResult entry;
    FlowResult exit;
    std::optional<TransferResult> contextSave;
    std::optional<TransferResult> contextRestore;
    std::optional<HandoverRecord> toSlow;
    std::optional<HandoverRecord> toFast;
    /** What woke the platform and how long detection took. */
    WakeReason wakeReason = WakeReason::KernelTimer;
    Tick wakeDetectLatency = 0;
    /** End-to-end context verification for the cycle. */
    bool contextIntact = true;
};

/** Builds and runs the standby flows for one platform + technique set. */
class StandbyFlows : public Named
{
  public:
    StandbyFlows(Platform &platform, const TechniqueSet &techniques);

    const TechniqueSet &techniques() const { return tech; }

    /**
     * Run the full entry flow (C0 -> DRIPS/ODRIPS) on the platform's
     * event queue, starting now.
     */
    FlowResult enterIdle();

    /**
     * Run the full exit flow (DRIPS/ODRIPS -> C0).
     *
     * @param reason what woke the platform. In ODRIPS the chipset is
     * the wake hub and samples external events with the 32 kHz clock,
     * so detection gains up to one slow period of latency; baseline
     * DRIPS monitors continuously on the 24 MHz clock.
     */
    FlowResult exitIdle(WakeReason reason = WakeReason::KernelTimer);

    /** True while the platform sits in the idle state. */
    bool inIdleState() const { return idle; }

    /** Records of the last completed entry/exit pair. */
    const CycleRecord &lastCycle() const { return record; }

    /** The Step calibration performed at reset (WAKE-UP-OFF only). */
    const std::optional<CalibrationResult> &calibration() const
    {
        return calib;
    }

    /** FET gate (present when AON IO gating is enabled). */
    const FetGate *fetGate() const { return fet.get(); }

    /** Thermal monitor (present when the thermal IO is offloaded to
     * the chipset, i.e. with AON IO gating). */
    const ThermalMonitor *thermalMonitor() const { return thermal.get(); }

    /** Detection latency of a wake of @p reason asserted at @p now. */
    Tick wakeDetectLatency(WakeReason reason, Tick now) const;

    /**
     * Battery power measured at the platform level while in the idle
     * state (call between enterIdle and exitIdle).
     */
    Milliwatts idleBatteryPower() const;

    /**
     * @name Checkpoint support
     * Serializes the last cycle record, the idle flag, the transfer
     * FSMs' DRAM-copy-valid flags, and the thermal monitor's pending
     * assertion tick. The calibration, FET gate, and thermal monitor
     * objects themselves are pure functions of the configuration and
     * re-created by construction.
     * @{
     */
    void saveState(ckpt::Writer &w) const;
    void loadState(ckpt::Reader &r);
    /** @} */

  private:
    FlowSequence buildEntryFlow();
    FlowSequence buildExitFlow(WakeReason reason);

    void applyFinalIdleLevels(Tick now);

    Platform &p;
    TechniqueSet tech;

    ContextTransferFsm saFsm;
    ContextTransferFsm llcFsm;
    BootFsm bootFsm; // ckpt: skip(config + refs only; no tick state)
    EmramContextPath emramPath; // ckpt: skip(config + refs only; no tick state)
    std::unique_ptr<FetGate> fet; // ckpt: via(gpio pin level + PowerModel)
    std::unique_ptr<ThermalMonitor> thermal;
    std::optional<CalibrationResult> calib; // ckpt: via(timing section)

    CycleRecord record;
    bool idle = false;
};

} // namespace odrips

#endif // ODRIPS_FLOWS_STANDBY_FLOWS_HH
