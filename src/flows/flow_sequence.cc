#include "flows/flow_sequence.hh"

#include "sim/logging.hh"

namespace odrips
{

FlowStep
makeStep(std::string name, Tick duration, std::function<void(Tick)> action)
{
    ODRIPS_ASSERT(duration >= 0, "negative step duration");
    return FlowStep{
        std::move(name),
        [duration, action = std::move(action)](Tick start) {
            if (action)
                action(start);
            return duration;
        },
    };
}

Tick
FlowResult::stepDuration(const std::string &name) const
{
    for (const StepRecord &r : steps) {
        if (r.name == name)
            return r.duration;
    }
    return 0;
}

FlowResult
FlowSequence::execute(EventQueue &eq) const
{
    FlowResult result;
    result.started = eq.now();

    bool done = steps.empty();
    std::size_t index = 0;

    Event step_event(name_ + ".step", [&] {
        if (index >= steps.size()) {
            done = true;
            return;
        }
        const FlowStep &step = steps[index];
        const Tick start = eq.now();
        const Tick duration = step.run(start);
        ODRIPS_ASSERT(duration >= 0, name_, ": step '", step.name,
                      "' returned negative duration");
        result.steps.push_back(StepRecord{step.name, start, duration});
        ++index;
        eq.scheduleAfter(step_event, duration);
    });

    eq.scheduleAfter(step_event, 0);
    while (!done) {
        if (!eq.step())
            panic(name_, ": event queue drained before flow completion");
    }

    result.completed = eq.now();
    return result;
}

} // namespace odrips
