#include "stats/sweep_meter.hh"

#include <mutex>
#include <ostream>

#include "stats/report.hh"

namespace odrips::stats
{

namespace
{

std::mutex registryMutex;
std::vector<SweepRecord> &
registry()
{
    static std::vector<SweepRecord> records;
    return records;
}

std::mutex sectionMutex;
std::vector<std::function<void(std::ostream &)>> &
sections()
{
    static std::vector<std::function<void(std::ostream &)>> list;
    return list;
}

} // namespace

SweepMeter::SweepMeter(std::string meter_name, std::size_t point_count,
                       unsigned job_count)
    : name(std::move(meter_name)), points(point_count), jobs(job_count),
      // odrips-lint: allow(wall-clock)
      start(std::chrono::steady_clock::now())
{
}

SweepMeter::~SweepMeter()
{
    finish();
}

void
SweepMeter::finish()
{
    if (recorded)
        return;
    recorded = true;
    SweepRecord rec;
    rec.name = name;
    rec.points = points;
    rec.jobs = jobs;
    rec.wallSeconds =
        // odrips-lint: allow(wall-clock)
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    std::lock_guard<std::mutex> lock(registryMutex);
    registry().push_back(std::move(rec));
}

std::vector<SweepRecord>
sweepRecords()
{
    std::lock_guard<std::mutex> lock(registryMutex);
    return registry();
}

void
clearSweepRecords()
{
    std::lock_guard<std::mutex> lock(registryMutex);
    registry().clear();
}

void
printSweepReport(std::ostream &os)
{
    const std::vector<SweepRecord> records = sweepRecords();
    if (records.empty())
        return;

    Table table("sweep throughput");
    table.setHeader({"sweep", "points", "jobs", "wall", "points/s"});
    std::size_t total_points = 0;
    double total_seconds = 0.0;
    for (const SweepRecord &rec : records) {
        table.addRow({rec.name, std::to_string(rec.points),
                      std::to_string(rec.jobs),
                      fmtTime(rec.wallSeconds),
                      fmt(rec.pointsPerSecond(), 0)});
        total_points += rec.points;
        total_seconds += rec.wallSeconds;
    }
    table.print(os);
    os << "total: " << total_points << " points in "
       << fmtTime(total_seconds) << " of sweep wall-clock\n";
}

void
addReportSection(std::function<void(std::ostream &)> section)
{
    std::lock_guard<std::mutex> lock(sectionMutex);
    sections().push_back(std::move(section));
}

void
printRunTelemetry(std::ostream &os)
{
    printSweepReport(os);
    std::vector<std::function<void(std::ostream &)>> snapshot;
    {
        std::lock_guard<std::mutex> lock(sectionMutex);
        snapshot = sections();
    }
    for (const auto &section : snapshot)
        section(os);
}

} // namespace odrips::stats
