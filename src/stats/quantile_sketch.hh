/**
 * @file
 * Deterministic streaming quantile sketch for fleet campaigns.
 *
 * A fixed-geometry log-histogram: every positive double lands in the
 * bucket addressed by its binary exponent (frexp) and a linear
 * subdivision of its mantissa, so add() is one array increment and the
 * bucket a value maps to depends only on the value — never on
 * insertion order, worker count, or what was added before. Merges add
 * counter arrays element-wise (u64 adds commute and associate), which
 * is what makes campaign percentiles bit-identical across `--jobs`:
 * per-worker sketches merged in any order hold the same counts.
 *
 * Accuracy is a pure function of the geometry: 64 sub-buckets per
 * octave bound the relative half-width of any bucket by 1/128
 * (~0.8%), so quantile() is within ~1.6% relative of the exact sorted
 * quantile once the rank itself is resolved (the histogram holds exact
 * counts, so rank error is zero). Memory is O(1): one fixed counter
 * array (stateBytes()), independent of how many values were added —
 * the O(stats) half of the fleet aggregation contract.
 *
 * Values are expected to be >= 0 (day-average powers, energies).
 * Negative inputs are counted and ordered below zero but their
 * magnitude is not retained; a quantile landing on one reports 0.0.
 */

#ifndef ODRIPS_STATS_QUANTILE_SKETCH_HH
#define ODRIPS_STATS_QUANTILE_SKETCH_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace odrips::stats
{

/** Order-independent fixed-bucket log-histogram (see file comment). */
class QuantileSketch
{
  public:
    /** Sub-buckets per octave (linear mantissa subdivision). */
    static constexpr int kSubBuckets = 64;
    /** Smallest / largest binary exponent with a dedicated bucket;
     * values outside land in the underflow/overflow bins. */
    static constexpr int kMinExp = -128;
    static constexpr int kMaxExp = 127;

    /** Allocates the counter array — construct outside hot loops. */
    QuantileSketch();

    /** Record one value. Pure array increment; no allocation. */
    void add(double value);

    /** Element-wise counter addition; commutative and associative. */
    void merge(const QuantileSketch &other);

    /**
     * Value at quantile @p q (clamped to [0, 1]) by nearest-rank over
     * the cumulative counts; returns the deterministic midpoint
     * representative of the bucket holding that rank, or 0.0 on an
     * empty sketch.
     */
    double quantile(double q) const;

    /** Total values recorded (including zero/negative/out-of-range). */
    std::uint64_t count() const { return total; }

    std::uint64_t zeroValues() const { return zeroCount; }
    std::uint64_t negativeValues() const { return negativeCount; }

    /** Resident size of the counter state, for O(stats) telemetry. */
    static std::size_t stateBytes();

    /** Bit-exact state comparison (merge-associativity tests). */
    bool operator==(const QuantileSketch &other) const;

  private:
    static constexpr std::size_t kBuckets =
        static_cast<std::size_t>(kMaxExp - kMinExp + 1) * kSubBuckets;

    /** Midpoint representative of bucket @p index (ldexp; exact). */
    static double representative(std::size_t index);

    std::vector<std::uint64_t> counts; ///< kBuckets fixed counters
    std::uint64_t zeroCount = 0;
    std::uint64_t negativeCount = 0;
    std::uint64_t underflowCount = 0;
    std::uint64_t overflowCount = 0;
    std::uint64_t total = 0;
};

} // namespace odrips::stats

#endif // ODRIPS_STATS_QUANTILE_SKETCH_HH
