#include "stats/group.hh"

#include "stats/stat.hh"

namespace odrips::stats
{

StatGroup::StatGroup(std::string name, StatGroup *parent_group)
    : _name(std::move(name)), parent(parent_group)
{
    if (parent)
        parent->kids.push_back(this);
}

StatGroup::~StatGroup()
{
    if (parent)
        std::erase(parent->kids, this);
}

std::string
StatGroup::fullName() const
{
    if (parent && !parent->fullName().empty())
        return parent->fullName() + "." + _name;
    return _name;
}

void
StatGroup::registerStat(Stat *stat)
{
    stats.push_back(stat);
}

void
StatGroup::resetAll()
{
    for (Stat *s : stats)
        s->reset();
    for (StatGroup *g : kids)
        g->resetAll();
}

} // namespace odrips::stats
