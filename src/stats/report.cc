#include "stats/report.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "sim/logging.hh"
#include "stats/group.hh"
#include "stats/stat.hh"

namespace odrips::stats
{

Table::Table(std::string table_title) : title(std::move(table_title)) {}

void
Table::setHeader(std::vector<std::string> new_header)
{
    header = std::move(new_header);
    body.clear();
}

void
Table::addRow(std::vector<std::string> row)
{
    if (!header.empty() && row.size() != header.size()) {
        panic("table '", title, "': row width ", row.size(),
              " != header width ", header.size());
    }
    body.push_back(std::move(row));
}

void
Table::addSeparator()
{
    body.emplace_back();
}

void
Table::print(std::ostream &os) const
{
    // Compute column widths.
    std::vector<std::size_t> widths;
    auto account = [&](const std::vector<std::string> &row) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    if (!header.empty())
        account(header);
    for (const auto &row : body)
        account(row);

    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 3;

    auto rule = [&]() { os << std::string(std::max<std::size_t>(total, 8), '-') << '\n'; };

    if (!title.empty()) {
        rule();
        os << title << '\n';
    }
    rule();

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i]))
               << row[i];
            if (i + 1 < row.size())
                os << " | ";
        }
        os << '\n';
    };

    if (!header.empty()) {
        print_row(header);
        rule();
    }
    for (const auto &row : body) {
        if (row.empty())
            rule();
        else
            print_row(row);
    }
    rule();
}

std::string
Table::toString() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

std::string
fmt(double value, int digits)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << value;
    return os.str();
}

std::string
fmtPower(double watts)
{
    const double aw = std::fabs(watts);
    if (aw >= 1.0)
        return fmt(watts, 3) + " W";
    if (aw >= 1e-3)
        return fmt(watts * 1e3, 3) + " mW";
    return fmt(watts * 1e6, 3) + " uW";
}

std::string
fmtPower(Milliwatts power)
{
    return fmtPower(power.watts());
}

std::string
fmtEnergy(Millijoules energy)
{
    const double aj = std::fabs(energy.joules());
    if (aj >= 1.0)
        return fmt(energy.joules(), 3) + " J";
    if (aj >= 1e-3)
        return fmt(energy.millijoules(), 3) + " mJ";
    return fmt(energy.microjoules(), 3) + " uJ";
}

std::string
fmtTime(double seconds)
{
    const double as = std::fabs(seconds);
    if (as >= 1.0)
        return fmt(seconds, 3) + " s";
    if (as >= 1e-3)
        return fmt(seconds * 1e3, 3) + " ms";
    if (as >= 1e-6)
        return fmt(seconds * 1e6, 3) + " us";
    return fmt(seconds * 1e9, 3) + " ns";
}

std::string
fmtTime(Seconds duration)
{
    return fmtTime(duration.seconds());
}

std::string
fmtPercent(double fraction, int digits)
{
    return fmt(fraction * 100.0, digits) + "%";
}

namespace
{

void
dumpGroup(std::ostream &os, const StatGroup &group)
{
    const std::string prefix =
        group.fullName().empty() ? "" : group.fullName() + ".";
    for (const Stat *s : group.statistics()) {
        os << prefix << s->name() << " = " << s->value();
        if (!s->unit().empty())
            os << ' ' << s->unit();
        if (!s->description().empty())
            os << "  # " << s->description();
        os << '\n';
    }
    for (const StatGroup *g : group.children())
        dumpGroup(os, *g);
}

} // namespace

void
dumpStats(std::ostream &os, const StatGroup &group)
{
    dumpGroup(os, group);
}

} // namespace odrips::stats
