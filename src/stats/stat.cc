#include "stats/stat.hh"

#include <algorithm>
#include <cmath>

#include "stats/group.hh"

namespace odrips::stats
{

Stat::Stat(StatGroup &group, std::string name, std::string description,
           std::string unit)
    : _name(std::move(name)), _description(std::move(description)),
      _unit(std::move(unit))
{
    group.registerStat(this);
}

void
Distribution::sample(double v)
{
    if (count == 0) {
        minVal = v;
        maxVal = v;
    } else {
        minVal = std::min(minVal, v);
        maxVal = std::max(maxVal, v);
    }
    total += v;
    totalSq += v * v;
    ++count;
}

double
Distribution::stddev() const
{
    if (count < 2)
        return 0.0;
    const double n = static_cast<double>(count);
    const double var = (totalSq - total * total / n) / (n - 1);
    return var > 0 ? std::sqrt(var) : 0.0;
}

void
Distribution::reset()
{
    count = 0;
    total = 0;
    totalSq = 0;
    minVal = 0;
    maxVal = 0;
}

} // namespace odrips::stats
