/**
 * @file
 * Fixed-bucket histogram statistic.
 *
 * Used for latency and power-sample distributions (e.g. the wake-detect
 * latency spread caused by 32 kHz sampling).
 */

#ifndef ODRIPS_STATS_HISTOGRAM_HH
#define ODRIPS_STATS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "stats/stat.hh"

namespace odrips::stats
{

/** Linear-bucket histogram over [lo, hi) with under/overflow bins. */
class Histogram : public Stat
{
  public:
    /**
     * @param group   owning stat group
     * @param name    stat name
     * @param description human description
     * @param lo      lower bound of the bucketed range
     * @param hi      upper bound of the bucketed range
     * @param buckets number of equal-width buckets
     * @param unit    unit label
     */
    Histogram(StatGroup &group, std::string name, std::string description,
              double lo, double hi, std::size_t buckets,
              std::string unit = "");

    void sample(double v);

    std::uint64_t samples() const { return count; }
    std::uint64_t underflows() const { return under; }
    std::uint64_t overflows() const { return over; }

    /** Count in bucket @p i (0-based). */
    std::uint64_t bucketCount(std::size_t i) const;

    /** Inclusive lower edge of bucket @p i. */
    double bucketLow(std::size_t i) const;

    std::size_t bucketCountTotal() const { return bins.size(); }

    double
    mean() const
    {
        return count ? sum / static_cast<double>(count) : 0.0;
    }

    /**
     * Value below which @p fraction of samples fall (linear
     * interpolation within a bucket; clamps to the bucketed range).
     */
    double percentile(double fraction) const;

    /** Render a compact ASCII sparkline of the distribution. */
    std::string render(std::size_t width = 40) const;

    double value() const override { return mean(); }
    void reset() override;

    std::vector<std::uint64_t>
    packState() const override
    {
        std::vector<std::uint64_t> w{under, over, count, packDouble(sum)};
        w.insert(w.end(), bins.begin(), bins.end());
        return w;
    }

    bool
    unpackState(const std::vector<std::uint64_t> &w) override
    {
        if (w.size() != 4 + bins.size())
            return false;
        under = w[0];
        over = w[1];
        count = w[2];
        sum = unpackDouble(w[3]);
        for (std::size_t i = 0; i < bins.size(); ++i)
            bins[i] = w[4 + i];
        return true;
    }

  private:
    double lo;
    double hi;
    std::vector<std::uint64_t> bins;
    std::uint64_t under = 0;
    std::uint64_t over = 0;
    std::uint64_t count = 0;
    double sum = 0.0;
};

} // namespace odrips::stats

#endif // ODRIPS_STATS_HISTOGRAM_HH
