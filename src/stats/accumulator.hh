/**
 * @file
 * Mergeable streaming accumulators for fleet aggregation.
 *
 * KahanSum keeps a compensation term so that summing millions of
 * similar-magnitude day-energies does not drift; the fleet engine sums
 * each contiguous device batch serially into one KahanSum and merges
 * the per-batch partials in batch-index order, which makes the final
 * mean a pure function of the device set — independent of how workers
 * were scheduled. merge() folds the other sum's value *and* its
 * pending compensation through the same compensated path, so a chain
 * of merges in a fixed order is deterministic too.
 *
 * Both types are plain value types with no allocation: safe to embed
 * in per-batch partial arrays inside `// fleet: hotloop` code.
 */

#ifndef ODRIPS_STATS_ACCUMULATOR_HH
#define ODRIPS_STATS_ACCUMULATOR_HH

#include <cstdint>

namespace odrips::stats
{

/** Compensated (Kahan) running sum. */
struct KahanSum
{
    double sum = 0.0;
    double compensation = 0.0;

    void add(double value)
    {
        const double y = value - compensation;
        const double t = sum + y;
        compensation = (t - sum) - y;
        sum = t;
    }

    /** Fold another partial in (deterministic for a fixed merge order). */
    void merge(const KahanSum &other)
    {
        add(other.sum);
        add(-other.compensation);
    }

    double value() const { return sum; }
};

/** Running minimum/maximum with a sample count. */
struct MinMax
{
    double minimum = 0.0;
    double maximum = 0.0;
    std::uint64_t count = 0;

    void add(double value)
    {
        if (count == 0) {
            minimum = value;
            maximum = value;
        } else {
            if (value < minimum)
                minimum = value;
            if (value > maximum)
                maximum = value;
        }
        ++count;
    }

    void merge(const MinMax &other)
    {
        if (other.count == 0)
            return;
        if (count == 0) {
            *this = other;
            return;
        }
        if (other.minimum < minimum)
            minimum = other.minimum;
        if (other.maximum > maximum)
            maximum = other.maximum;
        count += other.count;
    }
};

} // namespace odrips::stats

#endif // ODRIPS_STATS_ACCUMULATOR_HH
