/**
 * @file
 * Per-sweep throughput counters: wall-clock time, point count and
 * points/sec for every experiment sweep run through the parallel
 * runner, so the speedup of a `--jobs=N` run is observable in each
 * bench's report.
 *
 * The records accumulate in a process-wide registry (thread-safe);
 * benches print them with printSweepReport() — to stderr, so that the
 * result tables on stdout stay byte-identical for any worker count.
 */

#ifndef ODRIPS_STATS_SWEEP_METER_HH
#define ODRIPS_STATS_SWEEP_METER_HH

#include <chrono>
#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace odrips::stats
{

/** One completed sweep. */
struct SweepRecord
{
    std::string name;
    std::size_t points = 0;
    unsigned jobs = 1;
    double wallSeconds = 0.0;

    double
    pointsPerSecond() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(points) / wallSeconds
                   : 0.0;
    }
};

/**
 * RAII wall-clock meter for one sweep: times construction to
 * destruction (or finish()) and appends a SweepRecord to the registry.
 */
class SweepMeter
{
  public:
    SweepMeter(std::string name, std::size_t points, unsigned jobs);
    ~SweepMeter();

    SweepMeter(const SweepMeter &) = delete;
    SweepMeter &operator=(const SweepMeter &) = delete;

    /** Stop the clock and record now (idempotent). */
    void finish();

  private:
    std::string name;
    std::size_t points;
    unsigned jobs;
    // Host wall-clock is deliberate here: the meter reports build
    // progress to the operator and never feeds simulation results.
    std::chrono::steady_clock::time_point start; // odrips-lint: allow(wall-clock)
    bool recorded = false;
};

/** Snapshot of every sweep recorded so far (in completion order). */
std::vector<SweepRecord> sweepRecords();

/** Drop all recorded sweeps (tests / repeated runs). */
void clearSweepRecords();

/**
 * Render the recorded sweeps as a table: name, points, jobs, wall
 * time, points/sec. Prints nothing when no sweep was recorded.
 */
void printSweepReport(std::ostream &os);

/**
 * Register an extra telemetry section to be appended whenever
 * printRunTelemetry() runs. Higher layers (e.g. the profile-cache in
 * core) hook their counters in here, so the stats layer never has to
 * know about them. Sections print in registration order and must be
 * safe to invoke multiple times. Registration is process-wide and
 * permanent (sections are expected to live for the process, like the
 * global caches they report on).
 */
void addReportSection(std::function<void(std::ostream &)> section);

/**
 * The standard end-of-run telemetry epilogue every bench prints to
 * stderr: the sweep-throughput report plus every registered section
 * (profile-cache counters, persistent-store counters, ...).
 */
void printRunTelemetry(std::ostream &os);

} // namespace odrips::stats

#endif // ODRIPS_STATS_SWEEP_METER_HH
