/**
 * @file
 * Text table rendering used by the benchmark harnesses so that every
 * reproduced table/figure prints in a consistent format.
 */

#ifndef ODRIPS_STATS_REPORT_HH
#define ODRIPS_STATS_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/units.hh"

namespace odrips::stats
{

class StatGroup;

/** A simple left/right aligned text table. */
class Table
{
  public:
    explicit Table(std::string title = "");

    /** Define the column headers (resets rows). */
    void setHeader(std::vector<std::string> header);

    /** Append a row; must match the header width if a header is set. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Render to a stream with aligned columns. */
    void print(std::ostream &os) const;

    /** Render to a string. */
    std::string toString() const;

    std::size_t rows() const { return body.size(); }

  private:
    std::string title;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> body; // empty vector = separator
};

/** Format a double with @p digits significant decimal places. */
std::string fmt(double value, int digits = 3);

/** Format a power value in engineering units (W / mW / uW). */
std::string fmtPower(double watts);
std::string fmtPower(Milliwatts power);

/** Format an energy value in engineering units (J / mJ / uJ). */
std::string fmtEnergy(Millijoules energy);

/** Format a time value in engineering units (s / ms / us / ns). */
std::string fmtTime(double seconds);
std::string fmtTime(Seconds duration);

/** Format a ratio as a signed percentage ("-22.0%"). */
std::string fmtPercent(double fraction, int digits = 1);

/** Dump a stat group hierarchy as "name = value unit # description". */
void dumpStats(std::ostream &os, const StatGroup &group);

} // namespace odrips::stats

#endif // ODRIPS_STATS_REPORT_HH
