/**
 * @file
 * Stat grouping and hierarchical registration.
 */

#ifndef ODRIPS_STATS_GROUP_HH
#define ODRIPS_STATS_GROUP_HH

#include <string>
#include <vector>

namespace odrips::stats
{

class Stat;

/**
 * A named collection of statistics; groups nest to mirror the SimObject
 * hierarchy.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);
    ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return _name; }

    /** Fully qualified dotted name (parent.child...). */
    std::string fullName() const;

    /** Called by the Stat constructor. */
    void registerStat(Stat *stat);

    const std::vector<Stat *> &statistics() const { return stats; }
    const std::vector<StatGroup *> &children() const { return kids; }

    /** Reset every stat in this group and all children. */
    void resetAll();

  private:
    std::string _name;
    StatGroup *parent; // ckpt: skip(tree wiring, rebuilt at registration)
    std::vector<Stat *> stats;
    std::vector<StatGroup *> kids;
};

} // namespace odrips::stats

#endif // ODRIPS_STATS_GROUP_HH
