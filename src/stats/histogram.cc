#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace odrips::stats
{

Histogram::Histogram(StatGroup &group, std::string name,
                     std::string description, double range_lo,
                     double range_hi, std::size_t buckets,
                     std::string unit)
    : Stat(group, std::move(name), std::move(description),
           std::move(unit)),
      lo(range_lo), hi(range_hi), bins(buckets, 0)
{
    ODRIPS_ASSERT(hi > lo, "histogram range is empty");
    ODRIPS_ASSERT(buckets > 0, "histogram needs at least one bucket");
}

void
Histogram::sample(double v)
{
    ++count;
    sum += v;
    if (v < lo) {
        ++under;
        return;
    }
    if (v >= hi) {
        ++over;
        return;
    }
    const double width = (hi - lo) / static_cast<double>(bins.size());
    auto index = static_cast<std::size_t>((v - lo) / width);
    index = std::min(index, bins.size() - 1);
    ++bins[index];
}

std::uint64_t
Histogram::bucketCount(std::size_t i) const
{
    ODRIPS_ASSERT(i < bins.size(), "bucket index out of range");
    return bins[i];
}

double
Histogram::bucketLow(std::size_t i) const
{
    ODRIPS_ASSERT(i <= bins.size(), "bucket index out of range");
    return lo + (hi - lo) * static_cast<double>(i) /
                    static_cast<double>(bins.size());
}

double
Histogram::percentile(double fraction) const
{
    ODRIPS_ASSERT(fraction >= 0.0 && fraction <= 1.0,
                  "percentile fraction out of range");
    if (count == 0)
        return lo;

    const double target = fraction * static_cast<double>(count);
    double cumulative = static_cast<double>(under);
    if (cumulative >= target)
        return lo;

    for (std::size_t i = 0; i < bins.size(); ++i) {
        const double next = cumulative + static_cast<double>(bins[i]);
        if (next >= target && bins[i] > 0) {
            const double within =
                (target - cumulative) / static_cast<double>(bins[i]);
            return bucketLow(i) + within * (bucketLow(i + 1) -
                                            bucketLow(i));
        }
        cumulative = next;
    }
    return hi;
}

std::string
Histogram::render(std::size_t width) const
{
    static const char *glyphs[] = {" ", ".", ":", "-", "=", "+",
                                   "*", "#", "%", "@"};
    std::string out;
    std::uint64_t peak = 1;
    for (std::uint64_t b : bins)
        peak = std::max(peak, b);

    const std::size_t cells = std::min(width, bins.size());
    for (std::size_t c = 0; c < cells; ++c) {
        // Aggregate bins into cells.
        const std::size_t from = c * bins.size() / cells;
        const std::size_t to = (c + 1) * bins.size() / cells;
        std::uint64_t total = 0;
        for (std::size_t i = from; i < to; ++i)
            total += bins[i];
        const std::size_t level = static_cast<std::size_t>(
            std::ceil(9.0 * static_cast<double>(total) /
                      static_cast<double>(peak * (to - from))));
        out += glyphs[std::min<std::size_t>(level, 9)];
    }
    return out;
}

void
Histogram::reset()
{
    std::fill(bins.begin(), bins.end(), 0);
    under = 0;
    over = 0;
    count = 0;
    sum = 0.0;
}

} // namespace odrips::stats
