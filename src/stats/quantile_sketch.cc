#include "stats/quantile_sketch.hh"

#include <cmath>

namespace odrips::stats
{

QuantileSketch::QuantileSketch() : counts(kBuckets, 0) {}

void QuantileSketch::add(double value)
{
    ++total;
    if (std::isnan(value)) {
        // NaN has no order; count it with the negatives so totals
        // balance but it can never claim a positive representative.
        ++negativeCount;
        return;
    }
    if (value < 0.0) {
        ++negativeCount;
        return;
    }
    if (value == 0.0) {
        ++zeroCount;
        return;
    }
    if (std::isinf(value)) {
        ++overflowCount;
        return;
    }
    int exp = 0;
    // frexp: value = m * 2^exp with m in [0.5, 1).
    const double m = std::frexp(value, &exp);
    if (exp < kMinExp) {
        ++underflowCount;
        return;
    }
    if (exp > kMaxExp) {
        ++overflowCount;
        return;
    }
    int sub = static_cast<int>((m - 0.5) * (2 * kSubBuckets));
    if (sub < 0)
        sub = 0;
    if (sub >= kSubBuckets)
        sub = kSubBuckets - 1;
    const std::size_t index =
        static_cast<std::size_t>(exp - kMinExp) * kSubBuckets +
        static_cast<std::size_t>(sub);
    ++counts[index];
}

void QuantileSketch::merge(const QuantileSketch &other)
{
    for (std::size_t i = 0; i < kBuckets; ++i)
        counts[i] += other.counts[i];
    zeroCount += other.zeroCount;
    negativeCount += other.negativeCount;
    underflowCount += other.underflowCount;
    overflowCount += other.overflowCount;
    total += other.total;
}

double QuantileSketch::representative(std::size_t index)
{
    const int exp = static_cast<int>(index / kSubBuckets) + kMinExp;
    const int sub = static_cast<int>(index % kSubBuckets);
    // Midpoint of the bucket's mantissa interval
    // [0.5 + sub/(2k), 0.5 + (sub+1)/(2k)).
    const double m =
        0.5 + (static_cast<double>(sub) + 0.5) / (2.0 * kSubBuckets);
    return std::ldexp(m, exp);
}

double QuantileSketch::quantile(double q) const
{
    if (total == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Nearest-rank: the smallest value whose cumulative count reaches
    // ceil(q * total), with rank 1 as the floor so q=0 is the minimum.
    std::uint64_t rank =
        static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
    if (rank < 1)
        rank = 1;
    if (rank > total)
        rank = total;

    std::uint64_t cumulative = negativeCount;
    if (rank <= cumulative)
        return 0.0; // magnitude of negatives is not retained
    cumulative += zeroCount;
    if (rank <= cumulative)
        return 0.0;
    cumulative += underflowCount;
    if (rank <= cumulative)
        return std::ldexp(0.5, kMinExp); // below the smallest bucket
    for (std::size_t i = 0; i < kBuckets; ++i) {
        cumulative += counts[i];
        if (rank <= cumulative)
            return representative(i);
    }
    // Remaining ranks live in the overflow bin.
    return std::ldexp(1.0, kMaxExp + 1);
}

std::size_t QuantileSketch::stateBytes()
{
    return kBuckets * sizeof(std::uint64_t) + 5 * sizeof(std::uint64_t);
}

bool QuantileSketch::operator==(const QuantileSketch &other) const
{
    return counts == other.counts && zeroCount == other.zeroCount &&
           negativeCount == other.negativeCount &&
           underflowCount == other.underflowCount &&
           overflowCount == other.overflowCount && total == other.total;
}

} // namespace odrips::stats
