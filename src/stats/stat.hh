/**
 * @file
 * Minimal statistics framework.
 *
 * Stats register themselves with a StatGroup; groups form the same
 * hierarchy as the SimObjects that own them and can be dumped into a text
 * report at the end of a simulation.
 */

#ifndef ODRIPS_STATS_STAT_HH
#define ODRIPS_STATS_STAT_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace odrips::stats
{

class StatGroup;

/** Exact double <-> u64 bit-pattern round-trip for packed stat state. */
inline std::uint64_t
packDouble(double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

inline double
unpackDouble(std::uint64_t bits)
{
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

/** Base class of all statistics. */
class Stat
{
  public:
    Stat(StatGroup &group, std::string name, std::string description,
         std::string unit = "");
    virtual ~Stat() = default;

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    const std::string &name() const { return _name; }
    const std::string &description() const { return _description; }
    const std::string &unit() const { return _unit; }

    /** Current value rendered for reports. */
    virtual double value() const = 0;

    /** Reset to the initial state. */
    virtual void reset() = 0;

    /**
     * Raw internal state as 64-bit words (doubles as bit patterns), for
     * snapshot/restore (sim/checkpoint). unpackState() must be fed the
     * exact word sequence packState() produced; the caller (the
     * checkpoint layer) validates lengths before applying.
     */
    virtual std::vector<std::uint64_t> packState() const = 0;
    virtual bool unpackState(const std::vector<std::uint64_t> &w) = 0;

  private:
    std::string _name;
    std::string _description; // ckpt: derived
    std::string _unit; // ckpt: derived
};

/** A simple additive counter / gauge. */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator+=(double v) { val += v; return *this; }
    Scalar &operator-=(double v) { val -= v; return *this; }
    Scalar &operator++() { val += 1; return *this; }
    void set(double v) { val = v; }

    double value() const override { return val; }
    void reset() override { val = 0; }

    std::vector<std::uint64_t>
    packState() const override
    {
        return {packDouble(val)};
    }

    bool
    unpackState(const std::vector<std::uint64_t> &w) override
    {
        if (w.size() != 1)
            return false;
        val = unpackDouble(w[0]);
        return true;
    }

  private:
    double val = 0;
};

/** Mean of all samples pushed so far. */
class Average : public Stat
{
  public:
    using Stat::Stat;

    void sample(double v)
    {
        sum += v;
        ++count;
    }

    std::uint64_t samples() const { return count; }
    double
    value() const override
    {
        return count ? sum / static_cast<double>(count) : 0.0;
    }

    void
    reset() override
    {
        sum = 0;
        count = 0;
    }

    std::vector<std::uint64_t>
    packState() const override
    {
        return {packDouble(sum), count};
    }

    bool
    unpackState(const std::vector<std::uint64_t> &w) override
    {
        if (w.size() != 2)
            return false;
        sum = unpackDouble(w[0]);
        count = w[1];
        return true;
    }

  private:
    double sum = 0;
    std::uint64_t count = 0;
};

/** Running min/max/mean/sum of samples. */
class Distribution : public Stat
{
  public:
    using Stat::Stat;

    void sample(double v);

    std::uint64_t samples() const { return count; }
    double min() const { return count ? minVal : 0.0; }
    double max() const { return count ? maxVal : 0.0; }
    double sum() const { return total; }
    double
    mean() const
    {
        return count ? total / static_cast<double>(count) : 0.0;
    }
    /** Sample standard deviation (0 when fewer than two samples). */
    double stddev() const;

    double value() const override { return mean(); }
    void reset() override;

    std::vector<std::uint64_t>
    packState() const override
    {
        return {count, packDouble(total), packDouble(totalSq),
                packDouble(minVal), packDouble(maxVal)};
    }

    bool
    unpackState(const std::vector<std::uint64_t> &w) override
    {
        if (w.size() != 5)
            return false;
        count = w[0];
        total = unpackDouble(w[1]);
        totalSq = unpackDouble(w[2]);
        minVal = unpackDouble(w[3]);
        maxVal = unpackDouble(w[4]);
        return true;
    }

  private:
    std::uint64_t count = 0;
    double total = 0;
    double totalSq = 0;
    double minVal = 0;
    double maxVal = 0;
};

} // namespace odrips::stats

#endif // ODRIPS_STATS_STAT_HH
