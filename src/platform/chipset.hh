/**
 * @file
 * The chipset die (Sunrise Point-LP class): the always-on "hub" that
 * ODRIPS makes responsible for all wake events. Hosts the new
 * fast/slow wake-timer pair (Sec. 4), the GPIO bank whose two spare
 * pins serve thermal monitoring and FET control (Sec. 5), and the
 * always-on domain power.
 */

#ifndef ODRIPS_PLATFORM_CHIPSET_HH
#define ODRIPS_PLATFORM_CHIPSET_HH

#include "clock/clock_domain.hh"
#include "io/gpio.hh"
#include "platform/config.hh"
#include "power/power_model.hh"
#include "timing/wake_timer_unit.hh"

namespace odrips
{

/** The chipset die. */
class Chipset : public Named
{
  public:
    Chipset(std::string name, PowerModel &pm, const PlatformConfig &cfg,
            Crystal &xtal24, Crystal &xtal32);

    /** 24 MHz clock domain inside the chipset. */
    ClockDomain fastClock;
    /** 32.768 kHz RTC clock domain. */
    ClockDomain slowClock;

    // --- power components ---
    PowerComponent aonDomain;   ///< always-on domain (wake hub) // ckpt: via(PowerModel)
    PowerComponent fastClockTree; ///< 24 MHz distribution (off in slow // ckpt: via(PowerModel)
                                  ///  mode)
    PowerComponent activeExtra; ///< additional power while platform C0 // ckpt: via(PowerModel)
    PowerComponent timers;      ///< the new fast/slow timer pair // ckpt: via(PowerModel)
                                ///  (paper: < 0.001% of chipset power)

    /** The new wake-timer unit (fast + slow timers + Step). */
    WakeTimerUnit wakeTimer;

    /** GPIO bank; ODRIPS claims two spare pins. */
    GpioBank gpios;

    /** Pin indices claimed for ODRIPS (set by claimOdripsPins). */
    unsigned thermalPin = 0; // ckpt: derived
    unsigned fetControlPin = 0; // ckpt: derived
    bool odripsPinsClaimed = false; // ckpt: derived

    /** Claim the thermal-monitor input and FET-control output. */
    void claimOdripsPins();

    /** Chipset power while the platform is active / in DRIPS. */
    void applyActivePower(Tick now);
    void applyIdlePower(Tick now, bool slow_mode);

  private:
    const PlatformConfig &cfg;
};

} // namespace odrips

#endif // ODRIPS_PLATFORM_CHIPSET_HH
