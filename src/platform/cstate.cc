#include "platform/cstate.hh"

namespace odrips
{

CStateTable::CStateTable(std::vector<CState> states)
    : table(std::move(states))
{
    ODRIPS_ASSERT(table.size() >= 2, "C-state table needs C0 and an idle "
                                     "state");
    ODRIPS_ASSERT(table.front().index == 0, "first state must be C0");
    for (std::size_t i = 1; i < table.size(); ++i) {
        ODRIPS_ASSERT(table[i].index > table[i - 1].index,
                      "C-states must be ordered by depth");
        ODRIPS_ASSERT(table[i].exitLatency >= table[i - 1].exitLatency,
                      "deeper C-states cannot have shorter exit latency");
    }
    ODRIPS_ASSERT(table.back().isDrips, "deepest state must be DRIPS");
}

CStateTable
CStateTable::skylake()
{
    // Latencies follow the platform's published order of magnitude;
    // relative powers are calibrated to the paper's 60 mW DRIPS and
    // ~3 W C0 anchors.
    return CStateTable({
        {"C0", 0, 0, 0, 50.0, false},
        {"C1", 1, 2 * oneUs, oneUs, 25.0, false},
        {"C3", 3, 50 * oneUs, 30 * oneUs, 8.0, false},
        {"C6", 6, 85 * oneUs, 50 * oneUs, 4.0, false},
        {"C7", 7, 110 * oneUs, 70 * oneUs, 2.5, false},
        {"C8", 8, 200 * oneUs, 140 * oneUs, 1.6, false},
        {"C10", 10, 300 * oneUs, 200 * oneUs, 1.0, true},
    });
}

const CState &
CStateTable::select(Tick ltr, Tick tnte) const
{
    // Deepest state that wakes within the latency tolerance AND whose
    // transitions will be amortized by the expected dwell.
    for (auto it = table.rbegin(); it != table.rend(); ++it) {
        if (it->index == 0)
            continue;
        if (it->exitLatency > ltr)
            continue;
        const Tick transitions = it->entryLatency + it->exitLatency;
        if (residencyFactor * transitions > tnte)
            continue;
        return *it;
    }
    // Nothing qualifies: take the shallowest idle state anyway
    // (C0 is not an idle choice).
    return table[1];
}

const CState &
CStateTable::byIndex(int index) const
{
    for (const CState &s : table) {
        if (s.index == index)
            return s;
    }
    fatal("no C-state with index ", index);
}

} // namespace odrips
