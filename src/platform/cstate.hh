/**
 * @file
 * Processor idle power states (C-states).
 *
 * C-states are numbered C0 (active) to Cn; deeper states consume less
 * power but cost more entry/exit latency (paper Sec. 1). The deepest,
 * C10 on this platform, is DRIPS. The PMU selects the target state from
 * latency tolerance reporting (LTR) and the time to the next timer
 * event (TNTE).
 */

#ifndef ODRIPS_PLATFORM_CSTATE_HH
#define ODRIPS_PLATFORM_CSTATE_HH

#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace odrips
{

/** One idle power state. */
struct CState // ckpt: derived
{
    std::string name;
    /** Numeric depth (0 = active). */
    int index = 0;
    /** Worst-case exit latency back to C0. */
    Tick exitLatency = 0;
    /** Entry latency from C0. */
    Tick entryLatency = 0;
    /**
     * Platform power in this state relative to DRIPS power
     * (1.0 = DRIPS; shallower states burn more).
     */
    double powerRelativeToDrips = 1.0;
    /** True for the deepest runtime idle power state. */
    bool isDrips = false;
};

/** Ordered table of the platform's C-states. */
class CStateTable
{
  public:
    explicit CStateTable(std::vector<CState> states);

    /** The Skylake mobile table (C0..C10). */
    static CStateTable skylake();

    const std::vector<CState> &states() const { return table; }

    const CState &active() const { return table.front(); }
    const CState &deepest() const { return table.back(); }

    /**
     * PMU selection policy: the deepest state that is both
     * latency-feasible and residency-worthy. The exit latency must fit
     * the devices' latency tolerance (@p ltr); and the time to the next
     * timer event (@p tnte) must cover the state's transitions with
     * margin (the firmware's energy-break-even heuristic:
     * tnte >= residencyFactor * (entry + exit)). Never selects C0.
     */
    const CState &select(Tick ltr, Tick tnte) const;

    /** Residency heuristic multiplier used by select(). */
    static constexpr Tick residencyFactor = 3;

    /** Find by index (fatal if absent). */
    const CState &byIndex(int index) const;

  private:
    std::vector<CState> table;
};

} // namespace odrips

#endif // ODRIPS_PLATFORM_CSTATE_HH
