/**
 * @file
 * The processor die: compute domains, system agent, LLC, PMU, wake
 * timer, save/restore SRAMs, Boot SRAM, AON IO bank, and the processor
 * context. Matches the green-highlighted blocks of Fig. 1(a).
 */

#ifndef ODRIPS_PLATFORM_PROCESSOR_HH
#define ODRIPS_PLATFORM_PROCESSOR_HH

#include "clock/clock_domain.hh"
#include "io/aon_io.hh"
#include "mem/sram.hh"
#include "platform/config.hh"
#include "platform/context.hh"
#include "platform/cstate.hh"
#include "power/power_model.hh"
#include "timing/fast_timer.hh"

namespace odrips
{

/** The processor die. */
class Processor : public Named
{
  public:
    Processor(std::string name, PowerModel &pm, const PlatformConfig &cfg,
              const Crystal &xtal24);

    /** Own 24 MHz clock domain (fed through the AON clock buffers). */
    ClockDomain clock;

    // --- power components (nominal watts; flows drive them) ---
    PowerComponent coresGfx;    ///< cores + graphics compute power // ckpt: via(PowerModel)
    PowerComponent systemAgent; ///< SA (memory/IO controllers)
    PowerComponent llc;         ///< last-level cache
    PowerComponent pmuActive;   ///< PMU logic while awake // ckpt: via(PowerModel)
    PowerComponent wakeTimer;   ///< PMU wake monitoring + timer toggle
    PowerComponent srResidual;  ///< S/R SRAM residual with CTX offload // ckpt: via(PowerModel)
    PowerComponent transition;  ///< fabric power during entry/exit flows // ckpt: via(PowerModel)
    PowerComponent aonIoComp;   ///< backing component for aonIos // ckpt: via(PowerModel)
    PowerComponent saSramComp; // ckpt: via(PowerModel)
    PowerComponent coresSramComp; // ckpt: via(PowerModel)
    PowerComponent bootSramComp; // ckpt: via(PowerModel)

    // --- state-holding blocks ---
    Sram saSram;       ///< SA save/restore SRAM
    Sram coresSram;    ///< cores/GFX save/restore SRAM
    Sram bootSram;     ///< ~1 KB always-retained boot context
    AonIoBank aonIos;  ///< the gateable AON IO bank
    FastTimer tsc;     ///< main wake timer (time-stamp counter proxy)
    ProcessorContext context;
    CStateTable cstates; // ckpt: derived

    /** Core frequency currently programmed for C0. */
    double coreFrequencyHz;

    /** Put compute + SA + LLC + PMU at active (C0) levels. */
    void applyActivePower(Tick now);

    /** Compute domains entered their deepest state (pre-DRIPS). */
    void applyComputeIdle(Tick now);

    /** Core power while clock-gated on a memory stall. */
    Milliwatts stallPower() const;

  private:
    const PlatformConfig &cfg;
};

} // namespace odrips

#endif // ODRIPS_PLATFORM_PROCESSOR_HH
