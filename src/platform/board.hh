/**
 * @file
 * Board-level components: the two crystal oscillators, the remaining
 * board loads (embedded controller, sensors, rails), and the power
 * bookkeeping that ties crystal enable state to the power model.
 */

#ifndef ODRIPS_PLATFORM_BOARD_HH
#define ODRIPS_PLATFORM_BOARD_HH

#include "clock/crystal.hh"
#include "platform/config.hh"
#include "power/power_model.hh"

namespace odrips
{

/** The motherboard. */
class Board : public Named
{
  public:
    Board(std::string name, PowerModel &pm, const PlatformConfig &cfg);

    Crystal xtal24;
    Crystal xtal32;

    PowerComponent xtal24Comp; // ckpt: via(PowerModel)
    PowerComponent xtal32Comp; // ckpt: via(PowerModel)
    PowerComponent otherComp;     ///< EC, sensors, misc rails // ckpt: via(PowerModel)
    PowerComponent activeExtra;   ///< extra board power while C0 // ckpt: via(PowerModel)
    PowerComponent fetLeakage;    ///< FET off-state leakage // ckpt: via(PowerModel)

    /**
     * Re-sync the crystal power components with the crystals' enable
     * state. Must be called after anything (e.g. the WakeTimerUnit)
     * toggles a crystal.
     */
    void syncXtalPower(Tick now);

    void applyActivePower(Tick now);
    void applyIdlePower(Tick now);

  private:
    const PlatformConfig &cfg;
};

} // namespace odrips

#endif // ODRIPS_PLATFORM_BOARD_HH
