/**
 * @file
 * The ODRIPS technique set: which of the paper's three power-reduction
 * techniques are enabled on a platform, plus the named configurations
 * evaluated in Fig. 6.
 */

#ifndef ODRIPS_PLATFORM_TECHNIQUES_HH
#define ODRIPS_PLATFORM_TECHNIQUES_HH

#include <string>

#include "platform/config.hh"
#include "sim/logging.hh"

namespace odrips
{

/** Enabled techniques for a run. */
struct TechniqueSet
{
    /** Technique 1 (Sec. 4): migrate timer wake-up handling to the
     * chipset's slow timer; turn off the 24 MHz crystal. */
    bool wakeupOff = false;

    /** Technique 2 (Sec. 5): offload AON IO functions to the chipset
     * and power-gate the processor's AON IOs with the board FET.
     * Requires wakeupOff (paper footnote 4). */
    bool aonIoGate = false;

    /** Technique 3 (Sec. 6): store the processor context outside the
     * S/R SRAMs. Where it goes is contextStorage. */
    bool contextOffload = false;

    /** Destination for the offloaded context. */
    ContextStorage contextStorage = ContextStorage::Dram;

    /** Validate technique dependencies. */
    void
    validate() const
    {
        if (aonIoGate && !wakeupOff) {
            fatal("AON IO gating requires wake-up event migration "
                  "(the chipset must host wake events before the "
                  "processor's AON IOs can be gated)");
        }
    }

    bool
    any() const
    {
        return wakeupOff || aonIoGate || contextOffload;
    }

    std::string label() const;

    /** Named configurations from Fig. 6. */
    static TechniqueSet baseline();       ///< DRIPS as shipped
    static TechniqueSet wakeupOffOnly();  ///< WAKE-UP-OFF
    static TechniqueSet aonIoGated();     ///< AON-IO-GATE (incl. T1)
    static TechniqueSet ctxSgxDram();     ///< CTX-SGX-DRAM alone
    static TechniqueSet odrips();         ///< all three
    static TechniqueSet odripsMram();     ///< ODRIPS-MRAM
    static TechniqueSet odripsPcm();      ///< ODRIPS-PCM (with PCM main
                                          ///  memory in PlatformConfig)
};

} // namespace odrips

#endif // ODRIPS_PLATFORM_TECHNIQUES_HH
