#include "platform/config.hh"

#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/logging.hh"

namespace odrips
{

namespace
{

unsigned
parseJobsValue(const char *text, const char *origin)
{
    char *end = nullptr;
    const long value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || value < 1 || value > 4096)
        fatal("bad worker count '", text, "' from ", origin,
              " (expected an integer in [1, 4096])");
    return static_cast<unsigned>(value);
}

} // namespace

Milliwatts
PlatformConfig::coresGfxPowerAt(double hz) const
{
    // P(f) = P_base * (f / f_base) * (V(f) / V(f_base))^2 + leakage
    // folded into the base coefficient; evaluated against the paper's
    // 0.8 GHz connected-standby operating point.
    const double f_base = 0.8e9;
    const double v_base = vfCurve.voltageAt(f_base);
    const double v = vfCurve.voltageAt(hz);
    return activePower.coresGfxBase * (hz / f_base) *
           (v / v_base) * (v / v_base);
}

double
PlatformConfig::mainMemoryBandwidth() const
{
    return memoryKind == MainMemoryKind::Ddr3l ? dram.peakBandwidth()
                                               : pcm.readBandwidth;
}

PlatformConfig
skylakeConfig()
{
    PlatformConfig cfg;
    cfg.name = "skylake-i5-6300U";
    // Defaults in the struct definitions are the Skylake calibration.
    return cfg;
}

PlatformConfig
haswellUltConfig()
{
    // Start from Skylake and unscale the silicon power back to 22 nm.
    // Board-level components (crystals, board other, DRAM) do not
    // scale with the processor node.
    PlatformConfig cfg = skylakeConfig();
    cfg.name = "haswell-i5-4300U";
    cfg.processorNode = ProcessNode::Nm22;
    cfg.chipsetNode = ProcessNode::Nm32;

    const double leak_up =
        1.0 / leakageScale(ProcessNode::Nm22, ProcessNode::Nm14);
    const double dyn_up =
        1.0 / dynamicScale(ProcessNode::Nm22, ProcessNode::Nm14);
    const double chipset_leak_up =
        1.0 / leakageScale(ProcessNode::Nm32, ProcessNode::Nm22);

    DripsPowerBudget &dp = cfg.dripsPower;
    // DRIPS power is leakage-dominated on-die; toggling blocks carry a
    // dynamic component.
    dp.procWakeTimer *= 0.5 * leak_up + 0.5 * dyn_up;
    dp.procAonIo *= 0.6 * leak_up + 0.4 * dyn_up;
    dp.srSramSa *= leak_up;
    dp.srSramCores *= leak_up;
    dp.bootSram *= leak_up;
    dp.chipsetAon *= chipset_leak_up;
    dp.chipsetFastClock *= chipset_leak_up;

    ActivePowerBudget &ap = cfg.activePower;
    ap.coresGfxBase *= dyn_up;
    ap.systemAgent *= dyn_up;
    ap.llc *= dyn_up;
    ap.pmu *= dyn_up;
    ap.chipsetActive *= chipset_leak_up;

    // Haswell-ULT's DRIPS (C10) exit latency was ~3 ms, dominated by
    // voltage-regulator re-initialization (paper Sec. 3).
    cfg.timings.vrRampUp = 2800 * oneUs;
    cfg.timings.baselineExit = 3000 * oneUs;

    return cfg;
}

unsigned
resolveJobs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--jobs=", 7) == 0)
            return parseJobsValue(arg + 7, "--jobs");
        if (std::strncmp(arg, "-j", 2) == 0 && arg[2] != '\0')
            return parseJobsValue(arg + 2, "-j");
    }
    const char *env = std::getenv("ODRIPS_JOBS");
    if (env != nullptr && *env != '\0') // empty means unset
        return parseJobsValue(env, "ODRIPS_JOBS");
    return 0; // let the runner pick (hardware concurrency)
}

bool
incrementalContextEnabled()
{
    static const bool enabled = [] {
        const char *env = std::getenv("ODRIPS_INCREMENTAL");
        return env == nullptr || std::strcmp(env, "0") != 0;
    }();
    return enabled;
}

bool
checkpointSweepsEnabled()
{
    static const bool enabled = [] {
        const char *env = std::getenv("ODRIPS_CHECKPOINT");
        return env == nullptr || std::strcmp(env, "0") != 0;
    }();
    return enabled;
}

} // namespace odrips
