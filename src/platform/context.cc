#include "platform/context.hh"

namespace odrips
{

std::uint64_t
ContextRegion::checksum() const
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint8_t b : bytes) {
        h ^= b;
        h *= 0x100000001b3ULL;
    }
    return h;
}

void
ContextRegion::regenerate(Rng &rng)
{
    for (std::size_t i = 0; i + 8 <= bytes.size(); i += 8) {
        const std::uint64_t v = rng.next64();
        for (int k = 0; k < 8; ++k)
            bytes[i + k] = static_cast<std::uint8_t>(v >> (8 * k));
    }
    for (std::size_t i = bytes.size() & ~std::size_t{7}; i < bytes.size();
         ++i) {
        bytes[i] = static_cast<std::uint8_t>(rng.next64());
    }
}

ProcessorContext::ProcessorContext(std::uint64_t sa_bytes,
                                   std::uint64_t cores_bytes,
                                   std::uint64_t boot_bytes,
                                   std::uint64_t seed)
    : rng(seed)
{
    sa_.bytes.resize(sa_bytes);
    cores_.bytes.resize(cores_bytes);
    boot_.bytes.resize(boot_bytes);
    touch();
}

void
ProcessorContext::touch()
{
    sa_.regenerate(rng);
    cores_.regenerate(rng);
    boot_.regenerate(rng);
}

std::uint64_t
ProcessorContext::checksum() const
{
    return sa_.checksum() ^ (cores_.checksum() << 1) ^
           (boot_.checksum() << 2);
}

} // namespace odrips
