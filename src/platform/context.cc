#include "platform/context.hh"

#include <algorithm>

namespace odrips
{

std::uint64_t
ContextRegion::checksum() const
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint8_t b : bytes) {
        h ^= b;
        h *= 0x100000001b3ULL;
    }
    return h;
}

void
ContextRegion::regenerate(Rng &rng)
{
    for (std::size_t i = 0; i + 8 <= bytes.size(); i += 8) {
        const std::uint64_t v = rng.next64();
        for (int k = 0; k < 8; ++k)
            bytes[i + k] = static_cast<std::uint8_t>(v >> (8 * k));
    }
    for (std::size_t i = bytes.size() & ~std::size_t{7}; i < bytes.size();
         ++i) {
        bytes[i] = static_cast<std::uint8_t>(rng.next64());
    }
    if (dirty.lines() * DirtyLineMap::lineBytes < bytes.size())
        dirty.resize(bytes.size());
    dirty.markAll();
}

void
ContextRegion::mutateLines(Rng &rng, std::uint64_t line_count)
{
    if (bytes.empty())
        return;
    if (dirty.lines() * DirtyLineMap::lineBytes < bytes.size())
        dirty.resize(bytes.size());
    const std::uint64_t region_lines = dirty.lines();
    line_count = std::min(line_count, region_lines);
    for (std::uint64_t n = 0; n < line_count; ++n) {
        // Independent draws: duplicates model a hot CSR rewritten more
        // than once within the window, so the dirtied set is *at most*
        // line_count lines.
        const std::uint64_t line = rng.next64() % region_lines;
        const std::size_t off =
            static_cast<std::size_t>(line * DirtyLineMap::lineBytes);
        const std::size_t end =
            std::min(off + static_cast<std::size_t>(DirtyLineMap::lineBytes),
                     bytes.size());
        for (std::size_t i = off; i + 8 <= end; i += 8) {
            const std::uint64_t v = rng.next64();
            for (int k = 0; k < 8; ++k)
                bytes[i + k] = static_cast<std::uint8_t>(v >> (8 * k));
        }
        for (std::size_t i = off + ((end - off) & ~std::size_t{7});
             i < end; ++i) {
            bytes[i] = static_cast<std::uint8_t>(rng.next64());
        }
        dirty.markLine(line);
    }
}

ProcessorContext::ProcessorContext(std::uint64_t sa_bytes,
                                   std::uint64_t cores_bytes,
                                   std::uint64_t boot_bytes,
                                   std::uint64_t seed,
                                   const ContextMutationConfig &mutation)
    : rng(seed), model(mutation)
{
    sa_.bytes.resize(sa_bytes);
    cores_.bytes.resize(cores_bytes);
    boot_.bytes.resize(boot_bytes);
    // The first fill is always a full regenerate: there is no previous
    // save the CsrSubset model could be incremental against.
    sa_.regenerate(rng);
    cores_.regenerate(rng);
    boot_.regenerate(rng);
}

std::uint64_t
ProcessorContext::subsetLines(const ContextRegion &region) const
{
    const std::uint64_t region_lines = region.dirty.lines();
    const auto target = static_cast<std::uint64_t>(
        model.dirtyFraction * static_cast<double>(region_lines));
    return std::min(region_lines,
                    std::max(target, model.minDirtyLines));
}

void
ProcessorContext::touch()
{
    switch (model.kind) {
      case ContextMutationKind::FullRegenerate:
        sa_.regenerate(rng);
        cores_.regenerate(rng);
        boot_.regenerate(rng);
        return;
      case ContextMutationKind::CsrSubset:
        sa_.mutateLines(rng, subsetLines(sa_));
        cores_.mutateLines(rng, subsetLines(cores_));
        boot_.mutateLines(rng, subsetLines(boot_));
        return;
    }
}

std::uint64_t
ProcessorContext::checksum() const
{
    return sa_.checksum() ^ (cores_.checksum() << 1) ^
           (boot_.checksum() << 2);
}

} // namespace odrips
