#include "platform/techniques.hh"

namespace odrips
{

std::string
TechniqueSet::label() const
{
    if (!any())
        return "DRIPS (baseline)";
    if (wakeupOff && aonIoGate && contextOffload) {
        switch (contextStorage) {
          case ContextStorage::Dram: return "ODRIPS";
          case ContextStorage::Emram: return "ODRIPS-MRAM";
          case ContextStorage::SrSram: break;
        }
        return "ODRIPS";
    }
    if (wakeupOff && aonIoGate)
        return "AON-IO-GATE";
    if (wakeupOff)
        return "WAKE-UP-OFF";
    if (contextOffload)
        return "CTX-SGX-DRAM";
    return "custom";
}

TechniqueSet
TechniqueSet::baseline()
{
    return {};
}

TechniqueSet
TechniqueSet::wakeupOffOnly()
{
    TechniqueSet t;
    t.wakeupOff = true;
    return t;
}

TechniqueSet
TechniqueSet::aonIoGated()
{
    TechniqueSet t;
    t.wakeupOff = true;
    t.aonIoGate = true;
    return t;
}

TechniqueSet
TechniqueSet::ctxSgxDram()
{
    TechniqueSet t;
    t.contextOffload = true;
    t.contextStorage = ContextStorage::Dram;
    return t;
}

TechniqueSet
TechniqueSet::odrips()
{
    TechniqueSet t;
    t.wakeupOff = true;
    t.aonIoGate = true;
    t.contextOffload = true;
    t.contextStorage = ContextStorage::Dram;
    return t;
}

TechniqueSet
TechniqueSet::odripsMram()
{
    TechniqueSet t = odrips();
    t.contextStorage = ContextStorage::Emram;
    return t;
}

TechniqueSet
TechniqueSet::odripsPcm()
{
    // Same techniques as ODRIPS; the platform must be configured with
    // MainMemoryKind::Pcm so self-refresh and CKE drive disappear.
    return odrips();
}

} // namespace odrips
