#include "platform/chipset.hh"

namespace odrips
{

Chipset::Chipset(std::string name, PowerModel &pm,
                 const PlatformConfig &config, Crystal &xtal24,
                 Crystal &xtal32)
    : Named(name),
      fastClock(name + ".clk24", xtal24),
      slowClock(name + ".clk32k", xtal32),
      aonDomain(pm, name + ".aon_domain", "chipset"),
      fastClockTree(pm, name + ".fast_clock_tree", "chipset"),
      activeExtra(pm, name + ".active_extra", "chipset"),
      timers(pm, name + ".wake_timers", "chipset"),
      wakeTimer(name + ".wake_timer_unit", fastClock, slowClock, xtal24,
                config.pmlProtocolCycles + 2 * config.pmlCyclesPerWord,
                config.timings.xtalRestart),
      gpios(name + ".gpio", config.gpioPins),
      cfg(config)
{
    applyActivePower(0);
}

void
Chipset::claimOdripsPins()
{
    if (odripsPinsClaimed)
        return;
    thermalPin = gpios.claim("ec-thermal-monitor", GpioDirection::Input);
    fetControlPin = gpios.claim("aon-io-fet-control",
                                GpioDirection::Output);
    odripsPinsClaimed = true;
}

void
Chipset::applyActivePower(Tick now)
{
    aonDomain.setPower(cfg.dripsPower.chipsetAon, now);
    fastClockTree.setPower(cfg.dripsPower.chipsetFastClock, now);
    activeExtra.setPower(cfg.activePower.chipsetActive, now);
    // The fast timer toggles whenever the chipset 24 MHz clock runs;
    // its power is negligible (paper Sec. 4.2) but nonzero.
    timers.setPower(cfg.dripsPower.chipsetAon * 1e-5, now);
}

void
Chipset::applyIdlePower(Tick now, bool slow_mode)
{
    aonDomain.setPower(cfg.dripsPower.chipsetAon, now);
    fastClockTree.setPower(slow_mode ? Milliwatts::zero()
                                     : cfg.dripsPower.chipsetFastClock,
                           now);
    activeExtra.setPower(Milliwatts::zero(), now);
    timers.setPower(cfg.dripsPower.chipsetAon * (slow_mode ? 1e-6 : 1e-5),
                    now);
}

} // namespace odrips
