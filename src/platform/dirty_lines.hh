/**
 * @file
 * MEE-line-granular dirty tracking for context regions.
 *
 * On real silicon most of the ~200 KB processor context (firmware
 * patches, fuse values) is static across standby cycles; only a small
 * CSR subset changes during each active window. A DirtyLineMap records
 * which 64 B lines of a region were mutated since the last successful
 * off-chip save, so the context FSMs can stream only the dirty lines
 * through the MEE (incremental save) instead of re-encrypting and
 * re-MACing the whole region.
 *
 * The map is pure bookkeeping: it never touches modeled state, and a
 * fully-dirty map coalesces into one run covering the whole region, so
 * the delta save path degenerates bit-exactly to the historical full
 * save (the default full-regenerate mutation model keeps every golden
 * number unchanged).
 */

#ifndef ODRIPS_PLATFORM_DIRTY_LINES_HH
#define ODRIPS_PLATFORM_DIRTY_LINES_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"

namespace odrips
{

/** Per-line dirty bitmap over a context region. */
class DirtyLineMap
{
  public:
    /** Granularity: one MEE line (64 B). */
    static constexpr std::uint64_t lineBytes = 64;

    /** A maximal run of consecutive dirty lines. */
    struct Run
    {
        std::uint64_t firstLine = 0; // ckpt: via(markLine replay on load)
        std::uint64_t lineCount = 0; // ckpt: via(markLine replay on load)
    };

    DirtyLineMap() = default;

    /** Size the map to cover @p region_bytes (rounded up to lines);
     * newly covered lines start dirty (nothing saved yet). */
    void
    resize(std::uint64_t region_bytes)
    {
        nLines = (region_bytes + lineBytes - 1) / lineBytes;
        words.assign((nLines + 63) / 64, 0);
        markAll();
    }

    /** Number of lines covered. */
    std::uint64_t lines() const { return nLines; }

    bool
    test(std::uint64_t line) const
    {
        ODRIPS_ASSERT(line < nLines, "dirty-line index out of range");
        return (words[line >> 6] >> (line & 63)) & 1;
    }

    void
    markLine(std::uint64_t line)
    {
        ODRIPS_ASSERT(line < nLines, "dirty-line index out of range");
        words[line >> 6] |= std::uint64_t{1} << (line & 63);
    }

    /** Mark every line overlapping [byte_offset, byte_offset + len). */
    void
    markBytes(std::uint64_t byte_offset, std::uint64_t len)
    {
        if (len == 0)
            return;
        const std::uint64_t first = byte_offset / lineBytes;
        const std::uint64_t last = (byte_offset + len - 1) / lineBytes;
        for (std::uint64_t l = first; l <= last; ++l)
            markLine(l);
    }

    void
    markAll()
    {
        for (std::uint64_t &w : words)
            w = ~std::uint64_t{0};
        trimTail();
    }

    /** Clear every mark (region saved; DRAM copy now authoritative). */
    void
    clear()
    {
        for (std::uint64_t &w : words)
            w = 0;
    }

    std::uint64_t
    dirtyLines() const
    {
        std::uint64_t n = 0;
        for (std::uint64_t w : words)
            n += static_cast<std::uint64_t>(__builtin_popcountll(w));
        return n;
    }

    bool allDirty() const { return dirtyLines() == nLines; }
    bool anyDirty() const { return dirtyLines() != 0; }

    /** Maximal runs of consecutive dirty lines, in ascending order. */
    std::vector<Run>
    runs() const
    {
        std::vector<Run> out;
        std::uint64_t line = 0;
        while (line < nLines) {
            if (!test(line)) {
                ++line;
                continue;
            }
            Run r;
            r.firstLine = line;
            while (line < nLines && test(line))
                ++line;
            r.lineCount = line - r.firstLine;
            out.push_back(r);
        }
        return out;
    }

  private:
    /** Zero the padding bits past nLines in the last word. */
    void
    trimTail()
    {
        const std::uint64_t tail = nLines & 63;
        if (tail != 0 && !words.empty())
            words.back() &= (std::uint64_t{1} << tail) - 1;
    }

    std::uint64_t nLines = 0;
    std::vector<std::uint64_t> words;
};

} // namespace odrips

#endif // ODRIPS_PLATFORM_DIRTY_LINES_HH
