/**
 * @file
 * Platform configuration: Table 1 of the paper plus every calibrated
 * power/latency constant of the power model.
 *
 * Calibration anchors (all from the paper, see DESIGN.md Sec. 4):
 *  - platform DRIPS power ~60 mW at the battery, 74% delivery efficiency
 *    (so ~44.4 mW nominal);
 *  - processor share 18%; wake/timer + 24 MHz XTAL 5%; AON IO 7%;
 *    S/R SRAM 9%;
 *  - C0 (display off) ~3 W; exit latency ~300 us; entry ~200 us;
 *  - idle dwell ~30 s; active dwell 100-300 ms.
 */

#ifndef ODRIPS_PLATFORM_CONFIG_HH
#define ODRIPS_PLATFORM_CONFIG_HH

#include <cstdint>
#include <string>

#include "mem/dram.hh"
#include "mem/nvm.hh"
#include "platform/context.hh"
#include "power/process_scaling.hh"
#include "sim/ticks.hh"
#include "sim/units.hh"

namespace odrips
{

/** Technology used to hold the processor context in the idle state. */
enum class ContextStorage
{
    SrSram, ///< baseline: on-chip save/restore SRAMs
    Dram,   ///< ODRIPS: SGX-protected DRAM region
    Emram,  ///< ODRIPS-MRAM: on-die embedded MRAM
};

/** Main-memory technology (Sec. 8.3 swaps DRAM for PCM). */
enum class MainMemoryKind
{
    Ddr3l,
    Pcm,
};

/** Nominal (load-side) power constants for the DRIPS breakdown. */
struct DripsPowerBudget
{
    /** Processor PMU wake-up monitoring + timer toggling. */
    Milliwatts procWakeTimer = Milliwatts::fromWatts(1.2e-3);
    /** Processor AON IO bank. */
    Milliwatts procAonIo = Milliwatts::fromWatts(4.2e-3);
    /** System-agent save/restore SRAM (part of the 200 KB context). */
    Milliwatts srSramSa = Milliwatts::fromWatts(1.7e-3);
    /** Cores/GFX save/restore SRAM. */
    Milliwatts srSramCores = Milliwatts::fromWatts(3.7e-3);
    /** Boot SRAM (~1 KB, always retained, both designs). */
    Milliwatts bootSram = Milliwatts::fromWatts(0.03e-3);
    /** Chipset always-on domain (the wake "hub"). */
    Milliwatts chipsetAon = Milliwatts::fromWatts(16.6e-3);
    /** Chipset 24 MHz clock tree (off in ODRIPS slow mode). */
    Milliwatts chipsetFastClock = Milliwatts::fromWatts(0.5e-3);
    /** 24 MHz crystal oscillator on the board. */
    Milliwatts xtal24 = Milliwatts::fromWatts(1.8e-3);
    /** 32.768 kHz RTC crystal. */
    Milliwatts xtal32 = Milliwatts::fromWatts(0.3e-3);
    /** Remaining board components (EC, sensors, rails). */
    Milliwatts boardOther = Milliwatts::fromWatts(5.97e-3);
    // DRAM self-refresh (7.0 mW) and CKE drive (1.4 mW) come from
    // DramConfig.
};

/** Active-state (C0, display off) nominal power constants. */
struct ActivePowerBudget
{
    /** Core+GFX dynamic coefficient: power at baseFrequency/baseVolt. */
    Milliwatts coresGfxBase = Milliwatts::fromWatts(1.90);
    /** System agent while active. */
    Milliwatts systemAgent = Milliwatts::fromWatts(0.18);
    /** LLC while active. */
    Milliwatts llc = Milliwatts::fromWatts(0.08);
    /** PMU while active. */
    Milliwatts pmu = Milliwatts::fromWatts(0.01);
    /** Chipset additional active power (on top of AON). */
    Milliwatts chipsetActive = Milliwatts::fromWatts(0.18);
    /** Board additional active power (on top of boardOther). */
    Milliwatts boardActive = Milliwatts::fromWatts(0.15);
    /** Core power while clock-gated on a memory stall (fraction of
     * active core power). */
    double stallPowerFraction = 0.12;
    /**
     * Fabric/uncore power while the entry/exit flows sequence the
     * platform (rails partially up, cores off). Dominates Entry_power
     * and Exit_power in Eq. 1.
     */
    Milliwatts transitionNominal = Milliwatts::fromWatts(1.0);

    /**
     * Sustained main-memory traffic during the active window, bytes/s.
     * DRAM and PCM convert it to access power with their own energy
     * per byte — this is what makes PCM costlier in C0 (Sec. 8.3).
     */
    double activeMemoryTraffic = 0.5e9;
};

/** Core voltage-frequency curve (piecewise linear with a Vmin floor). */
struct VfCurve
{
    double vminVolts = 0.70;
    /** Frequency up to which the core runs at Vmin. */
    double vminCeilingHz = 1.0e9;
    /** Voltage slope above the floor, volts per GHz. */
    double slopeVoltsPerGHz = 0.12;
    double maxFrequencyHz = 2.4e9;

    /** Operating voltage at frequency @p hz. */
    double
    voltageAt(double hz) const
    {
        if (hz <= vminCeilingHz)
            return vminVolts;
        return vminVolts + slopeVoltsPerGHz * (hz - vminCeilingHz) / 1e9;
    }
};

/** Flow latencies and firmware overheads. */
struct FlowTimings
{
    /** Baseline DRIPS entry latency budget (paper: ~200 us). */
    Tick baselineEntry = 200 * oneUs;
    /** Baseline DRIPS exit latency budget (paper: ~300 us). */
    Tick baselineExit = 300 * oneUs;

    /** Voltage-regulator re-init on exit (paper: few hundred us on
     * Skylake; this is the bulk of baselineExit). */
    Tick vrRampUp = 265 * oneUs;
    Tick vrRampDown = 60 * oneUs;
    /** PMU rail turn-off and power-gate sequencing at entry. */
    Tick pmuGate = 100 * oneUs;
    /** Wake-event detection in the chipset. */
    Tick wakeDetect = 1 * oneUs;
    /** Firmware idle-state decision (LTR/TNTE evaluation). */
    Tick firmwareDecision = 2 * oneUs;

    /** 24 MHz crystal restart/stabilization on ODRIPS exit. */
    Tick xtalRestart = 30 * oneUs;

    /** FET switching time for AON IO gating. */
    Tick fetSwitch = 2 * oneUs;

    /**
     * Firmware overhead per technique, spent at *pre-power-down* level
     * (these dominate each technique's energy overhead and hence the
     * break-even point; see DESIGN.md).
     */
    Tick wakeupEntryFirmware = 6 * oneUs;
    Tick wakeupExitFirmware = 7 * oneUs;
    Tick aonGateEntryFirmware = 12 * oneUs;
    Tick aonGateExitFirmware = 13 * oneUs;
    Tick ctxEntryFirmware = 6 * oneUs;
    Tick ctxExitFirmware = 7 * oneUs;

    /** Boot FSM: restore PMU + memory controller + MEE from Boot SRAM. */
    Tick bootFsmRestore = 3 * oneUs;
};

/** Connected-standby workload parameters (Sec. 7, Workloads). */
struct WorkloadConfig
{
    /** Mean idle dwell between kernel-maintenance wakes (~30 s). */
    double idleDwellSeconds = 30.0;
    /** Kernel maintenance active window: 100 - 300 ms. */
    double activeMinSeconds = 0.100;
    double activeMaxSeconds = 0.300;
    /** CPU-bound cycles fraction of the active window (the rest is
     * memory/IO stall time that does not scale with core frequency). */
    double scalableFraction = 0.70;
    /** Mean interval between push-notification (network) wakes; zero
     * disables them. */
    double networkWakeMeanSeconds = 0.0;
    /**
     * Interrupt-coalescing window (paper Sec. 3, Observation 1): an
     * external wake arriving within this long *before* the next
     * kernel-timer wake is buffered by the SoC/peripheral and handled
     * together with it, eliminating a full wake cycle. Zero disables
     * coalescing.
     */
    double coalescingWindowSeconds = 0.0;
    std::uint64_t seed = 1;
};

/** Top-level platform configuration. */
struct PlatformConfig
{
    std::string name = "skylake-mobile";

    /** Process node of the processor die. */
    ProcessNode processorNode = ProcessNode::Nm14;
    /** Process node of the chipset die. */
    ProcessNode chipsetNode = ProcessNode::Nm22;

    /** Core base frequency for connected-standby C0 (paper: 0.8 GHz). */
    double coreFrequencyHz = 0.8e9;
    VfCurve vfCurve;

    /** LLC capacity (Table 1: 3 MB) and dirty fraction at entry. */
    std::uint64_t llcBytes = 3ULL << 20;
    double llcDirtyFraction = 0.20;

    /** Processor context sizes (Sec. 6: ~200 KB total, ~1 KB boot). */
    std::uint64_t saContextBytes = 64ULL << 10;
    std::uint64_t coresContextBytes = 136ULL << 10;
    std::uint64_t bootContextBytes = 1ULL << 10;

    /**
     * How the active window mutates the context (see context.hh). The
     * FullRegenerate default dirties everything, so every save is a
     * full save — the calibration the golden figures pin. CsrSubset
     * dirties a realistic CSR-sized slice and enables O(dirty-lines)
     * incremental saves on the CTX-SGX-DRAM path.
     */
    ContextMutationConfig contextMutation; // ckpt: derived

    /** Crystals: nominal Hz and manufacturing deviation (ppm). */
    double xtal24Ppm = 18.0;
    double xtal32Ppm = -35.0;

    /** Timer precision requirement: drift < 1 cycle per this many fast
     * cycles (1e9 = 1 ppb, the paper's choice). */
    std::uint64_t timerPrecisionCycles = 1000000000ULL;

    MainMemoryKind memoryKind = MainMemoryKind::Ddr3l;
    DramConfig dram;
    PcmConfig pcm;

    /** SGX/MEE: protected context region inside main memory. */
    std::uint64_t sgxRegionBase = 64ULL << 20;
    std::uint64_t sgxRegionSize = 64ULL << 20;
    /** MEE metadata cache capacity in nodes (80 B each). */
    std::size_t meeCacheNodes = 128;
    std::size_t meeCacheAssociativity = 8;

    ContextStorage contextStorage = ContextStorage::SrSram;
    /** eMRAM pessimism (1.0 = the paper's optimistic assumption). */
    double emramPessimism = 1.0;

    /**
     * Fraction of S/R SRAM power that cannot be removed by
     * CTX-SGX-DRAM (array periphery, range registers, MEE retention).
     */
    double srSramResidualFraction = 0.15;

    /**
     * Residual with eMRAM context storage: the NVM array replaces the
     * SRAM arrays outright, so only range-register/control retention
     * remains.
     */
    double emramResidualFraction = 0.04;

    DripsPowerBudget dripsPower;
    ActivePowerBudget activePower;
    FlowTimings timings;
    WorkloadConfig workload;

    /** Power delivery: low-load efficiency (DRIPS) and high-load
     * efficiency (C0), with the threshold between them. */
    double pdLowEfficiency = 0.74;
    double pdHighEfficiency = 0.87;
    Milliwatts pdThreshold = Milliwatts::fromWatts(0.2);

    /** Chipset GPIO pin count (two spares get claimed by ODRIPS). */
    unsigned gpioPins = 32;

    /** PML serialization parameters. */
    std::uint64_t pmlCyclesPerWord = 4;
    std::uint64_t pmlProtocolCycles = 8;

    /** Core active power at a given frequency (nominal). */
    Milliwatts coresGfxPowerAt(double hz) const;

    /** Effective peak bandwidth of the configured main memory. */
    double mainMemoryBandwidth() const;
};

/** The paper's target system: Skylake + Sunrise Point-LP (Table 1). */
PlatformConfig skylakeConfig();

/**
 * The paper's measurement baseline: Haswell-ULT + Lynx Point-LP at
 * 22 nm. Produced by *unscaling* the Skylake numbers with the process
 * model — mirroring (in reverse) the paper's measure-then-scale
 * methodology.
 */
PlatformConfig haswellUltConfig();

/**
 * Resolve the worker count for parallel experiment sweeps from the
 * command line and environment:
 *
 *  1. a `--jobs=N` (or `-jN`) argument in @p argv wins;
 *  2. otherwise the `ODRIPS_JOBS` environment variable;
 *  3. otherwise 0, meaning "let the runner pick" (hardware
 *     concurrency).
 *
 * `--jobs=1` / `ODRIPS_JOBS=1` is the serial opt-out: sweeps then run
 * inline on the calling thread. Benches feed the result to
 * exec::setDefaultJobs(). A malformed value is a fatal() config error.
 */
unsigned resolveJobs(int argc = 0, char **argv = nullptr);

/**
 * Whether the context FSMs may take the incremental (dirty-line) save
 * path. Defaults to enabled; `ODRIPS_INCREMENTAL=0` in the environment
 * is the opt-out (the delta machinery then always streams the full
 * region, byte-identical to the historical path). Read once per
 * process.
 */
bool incrementalContextEnabled();

/**
 * Whether sweep engines may warm a simulator checkpoint once and fork
 * it per point (see core/checkpoint.hh). Defaults to enabled;
 * `ODRIPS_CHECKPOINT=0` in the environment is the opt-out (sweeps then
 * construct every platform from scratch, the historical path — results
 * are bit-identical either way). Read once per process.
 */
bool checkpointSweepsEnabled();

} // namespace odrips

#endif // ODRIPS_PLATFORM_CONFIG_HH
