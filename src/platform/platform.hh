/**
 * @file
 * The full mobile platform of Fig. 1(a): board + chipset + processor +
 * main memory + MEE + memory controller + PML, wired to a shared event
 * queue, power model, and measurement infrastructure.
 */

#ifndef ODRIPS_PLATFORM_PLATFORM_HH
#define ODRIPS_PLATFORM_PLATFORM_HH

#include <memory>

#include "io/pml.hh"
#include "mem/dram.hh"
#include "mem/memory_controller.hh"
#include "mem/nvm.hh"
#include "platform/board.hh"
#include "platform/chipset.hh"
#include "platform/config.hh"
#include "platform/processor.hh"
#include "power/energy_accountant.hh"
#include "power/power_analyzer.hh"
#include "power/power_delivery.hh"
#include "power/rail.hh"
#include "security/mee.hh"

namespace odrips
{

/** The complete simulated platform. */
class Platform : public Named
{
  public:
    explicit Platform(const PlatformConfig &config);

    Platform(const Platform &) = delete;
    Platform &operator=(const Platform &) = delete;

    /** Owned copy of the configuration. */
    const PlatformConfig cfg;

    EventQueue eq;
    PowerModel pm;
    PowerDelivery pd; // ckpt: derived

    Board board;
    Chipset chipset;
    Processor processor;

    /** Main memory array power (self-refresh vs idle). */
    PowerComponent memoryComp; // ckpt: via(PowerModel)
    /** Processor-side CKE drive power. */
    PowerComponent ckeComp; // ckpt: via(PowerModel)
    /** eMRAM macro power (ODRIPS-MRAM only). */
    PowerComponent emramComp; // ckpt: via(PowerModel)

    /** DDR3L or PCM, per cfg.memoryKind. */
    std::unique_ptr<MainMemory> memory;
    /** Memory encryption engine over the protected context region. */
    std::unique_ptr<Mee> mee;
    /** Memory controller with the Context/SGX range register. */
    std::unique_ptr<MemoryController> memoryController;
    /** Embedded MRAM for ODRIPS-MRAM context storage. */
    std::unique_ptr<Emram> emram;

    /** Power-management link between processor and chipset. */
    Pml pml;

    /** Voltage rails (the AON supply of Fig. 1(a) plus the switchable
     * compute/SA/memory rails). */
    RailSet rails; // ckpt: skip(static view over power components)

    /** Exact battery-energy integration. */
    EnergyAccountant accountant;
    /** Sampling measurement emulation (Keysight N6705B). */
    PowerAnalyzer analyzer;

    /** Current simulated time. */
    Tick now() const { return eq.now(); }

    /** Instantaneous battery power at current component levels. */
    Milliwatts
    batteryPower() const
    {
        return pd.batteryPower(pm.totalPower());
    }

    /** Battery-level power of a component group right now. */
    Milliwatts groupBatteryPower(const std::string &group) const;

    /** Base address of the protected context region in main memory. */
    std::uint64_t contextRegionBase() const { return ctxBase; }
    /** Size of the protected context region (64 B aligned). */
    std::uint64_t contextRegionSize() const { return ctxSize; }

    /** Dram accessor (fatal when the platform uses PCM). */
    Dram &dram();

  private:
    std::uint64_t ctxBase = 0; // ckpt: derived
    std::uint64_t ctxSize = 0; // ckpt: derived
};

} // namespace odrips

#endif // ODRIPS_PLATFORM_PLATFORM_HH
