#include "platform/platform.hh"

namespace odrips
{

namespace
{

std::uint64_t
roundUp64(std::uint64_t v)
{
    return (v + 63) & ~std::uint64_t{63};
}

} // namespace

Platform::Platform(const PlatformConfig &config)
    : Named(config.name),
      cfg(config),
      pd(PowerDelivery::stepped(config.pdThreshold,
                                config.pdLowEfficiency,
                                config.pdHighEfficiency)),
      board(name() + ".board", pm, cfg),
      chipset(name() + ".chipset", pm, cfg, board.xtal24, board.xtal32),
      processor(name() + ".processor", pm, cfg, board.xtal24),
      memoryComp(pm, name() + ".dram", "memory"),
      ckeComp(pm, name() + ".cke_drive", "memory"),
      emramComp(pm, name() + ".emram", "processor"),
      pml(name() + ".pml", chipset.fastClock, cfg.pmlCyclesPerWord,
          cfg.pmlProtocolCycles),
      accountant(pm, pd),
      analyzer(name() + ".analyzer", eq)
{
    // Main memory technology (Sec. 8.3 swaps DRAM for PCM).
    if (cfg.memoryKind == MainMemoryKind::Ddr3l) {
        memory = std::make_unique<Dram>(name() + ".ddr3l", cfg.dram,
                                        &memoryComp, &ckeComp);
    } else {
        memory = std::make_unique<Pcm>(name() + ".pcm", cfg.pcm,
                                       &memoryComp);
    }

    // The platform boots into C0 with nominal memory traffic.
    memory->setActiveTraffic(cfg.activePower.activeMemoryTraffic, 0);

    // Protected context region + MEE.
    ctxBase = cfg.sgxRegionBase;
    ctxSize = roundUp64(cfg.saContextBytes + cfg.coresContextBytes);

    MeeConfig mee_cfg;
    for (std::size_t i = 0; i < mee_cfg.key.size(); ++i)
        mee_cfg.key[i] = static_cast<std::uint8_t>(0xA5 ^ (17 * i));
    mee_cfg.dataBase = ctxBase;
    mee_cfg.dataSize = ctxSize;
    mee_cfg.metaBase = cfg.sgxRegionBase + cfg.sgxRegionSize / 2;
    mee_cfg.cacheNodes = cfg.meeCacheNodes;
    mee_cfg.cacheAssociativity = cfg.meeCacheAssociativity;
    mee = std::make_unique<Mee>(name() + ".mee", *memory, mee_cfg);

    memoryController = std::make_unique<MemoryController>(
        name() + ".mem_ctrl", *memory, mee.get());
    memoryController->setProtectedRange({ctxBase, ctxSize});

    // eMRAM macro sized for the transferable context (ODRIPS-MRAM).
    EmramConfig em_cfg;
    em_cfg.capacityBytes = cfg.saContextBytes + cfg.coresContextBytes;
    em_cfg.pessimism = cfg.emramPessimism;
    emram = std::make_unique<Emram>(name() + ".emram", em_cfg,
                                    &emramComp);

    // Voltage rails. The AON supply stays up through DRIPS; everything
    // else is switchable.
    Rail &aon = rails.add("vcc_aon", 1.0);
    aon.attach(processor.wakeTimer);
    aon.attach(processor.aonIoComp);
    aon.attach(processor.saSramComp);
    aon.attach(processor.coresSramComp);
    aon.attach(processor.bootSramComp);
    aon.attach(processor.srResidual);
    aon.attach(chipset.aonDomain);
    aon.attach(chipset.fastClockTree);
    aon.attach(chipset.timers);

    Rail &compute = rails.add("vcc_compute", 0.70);
    compute.attach(processor.coresGfx);

    Rail &sa = rails.add("vcc_sa", 0.85);
    sa.attach(processor.systemAgent);
    sa.attach(processor.llc);
    sa.attach(processor.pmuActive);
    sa.attach(processor.transition);
    sa.attach(chipset.activeExtra);

    Rail &mem_rail = rails.add("vddq_mem", 1.35); // DDR3L
    mem_rail.attach(memoryComp);
    mem_rail.attach(ckeComp);
    mem_rail.attach(emramComp);

    Rail &board_rail = rails.add("v3p3_board", 3.3);
    board_rail.attach(board.xtal24Comp);
    board_rail.attach(board.xtal32Comp);
    board_rail.attach(board.otherComp);
    board_rail.attach(board.activeExtra);
    board_rail.attach(board.fetLeakage);

    // Default measurement channels: the four SMU channels of the
    // paper's setup.
    analyzer.addChannel("platform", [this] { return batteryPower(); });
    analyzer.addChannel("processor",
                        [this] { return groupBatteryPower("processor"); });
    analyzer.addChannel("chipset",
                        [this] { return groupBatteryPower("chipset"); });
    analyzer.addChannel("memory",
                        [this] { return groupBatteryPower("memory"); });
}

Milliwatts
Platform::groupBatteryPower(const std::string &group) const
{
    const Milliwatts total = pm.totalPower();
    if (total <= Milliwatts::zero())
        return Milliwatts::zero();
    const double tax = pd.batteryPower(total) / total;
    return pm.groupPower(group) * tax;
}

Dram &
Platform::dram()
{
    auto *d = dynamic_cast<Dram *>(memory.get());
    if (!d)
        fatal(name(), ": platform is not configured with DDR3L");
    return *d;
}

} // namespace odrips
