#include "platform/processor.hh"

namespace odrips
{

namespace
{

SramConfig
srSramConfig(std::uint64_t capacity, Milliwatts retention)
{
    SramConfig c;
    c.capacityBytes = capacity;
    c.process = SramProcess::HighPerformance;
    c.hpRetentionLeakPerByte =
        retention.watts() / static_cast<double>(capacity);
    return c;
}

} // namespace

Processor::Processor(std::string name, PowerModel &pm,
                     const PlatformConfig &config, const Crystal &xtal24)
    : Named(name),
      clock(name + ".clk24", xtal24),
      coresGfx(pm, name + ".cores_gfx", "processor"),
      systemAgent(pm, name + ".system_agent", "processor"),
      llc(pm, name + ".llc", "processor"),
      pmuActive(pm, name + ".pmu", "processor"),
      wakeTimer(pm, name + ".wake_timer", "processor"),
      srResidual(pm, name + ".sr_sram_residual", "processor"),
      transition(pm, name + ".transition_fabric", "processor"),
      aonIoComp(pm, name + ".aon_io", "processor"),
      saSramComp(pm, name + ".sr_sram_sa", "processor"),
      coresSramComp(pm, name + ".sr_sram_cores", "processor"),
      bootSramComp(pm, name + ".boot_sram", "processor"),
      saSram(name + ".sa_sram",
             srSramConfig(config.saContextBytes,
                          config.dripsPower.srSramSa),
             &saSramComp),
      coresSram(name + ".cores_sram",
                srSramConfig(config.coresContextBytes,
                             config.dripsPower.srSramCores),
                &coresSramComp),
      // The Boot SRAM holds the boot context plus the MEE root record.
      bootSram(name + ".boot_sram",
               srSramConfig(config.bootContextBytes + 64,
                            config.dripsPower.bootSram),
               &bootSramComp),
      aonIos(name + ".aon_ios", &aonIoComp, config.dripsPower.procAonIo),
      tsc(clock),
      context(config.saContextBytes, config.coresContextBytes,
              config.bootContextBytes, 7, config.contextMutation),
      cstates(CStateTable::skylake()),
      coreFrequencyHz(config.coreFrequencyHz),
      cfg(config)
{
    // The platform starts awake.
    tsc.load(0, 0);
    applyActivePower(0);
    // Boot SRAM is always retained; the S/R SRAMs start active.
    bootSram.setState(SramState::Retention, 0);
}

void
Processor::applyActivePower(Tick now)
{
    coresGfx.setPower(cfg.coresGfxPowerAt(coreFrequencyHz), now);
    systemAgent.setPower(cfg.activePower.systemAgent, now);
    llc.setPower(cfg.activePower.llc, now);
    pmuActive.setPower(cfg.activePower.pmu, now);
    wakeTimer.setPower(cfg.dripsPower.procWakeTimer, now);
    srResidual.setPower(Milliwatts::zero(), now);
    if (saSram.state() != SramState::Active)
        saSram.setState(SramState::Active, now);
    if (coresSram.state() != SramState::Active)
        coresSram.setState(SramState::Active, now);
}

void
Processor::applyComputeIdle(Tick now)
{
    coresGfx.setPower(Milliwatts::zero(), now);
    llc.setPower(cfg.activePower.llc * 0.5, now); // still powered, idle
}

Milliwatts
Processor::stallPower() const
{
    return cfg.coresGfxPowerAt(coreFrequencyHz) *
           cfg.activePower.stallPowerFraction;
}

} // namespace odrips
