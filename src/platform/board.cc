#include "platform/board.hh"

namespace odrips
{

Board::Board(std::string name, PowerModel &pm, const PlatformConfig &config)
    : Named(name),
      xtal24(name + ".xtal24", 24.0e6, config.xtal24Ppm,
             config.dripsPower.xtal24),
      xtal32(name + ".xtal32k", 32768.0, config.xtal32Ppm,
             config.dripsPower.xtal32),
      xtal24Comp(pm, name + ".xtal24", "board"),
      xtal32Comp(pm, name + ".xtal32k", "board"),
      otherComp(pm, name + ".other", "board"),
      activeExtra(pm, name + ".active_extra", "board"),
      fetLeakage(pm, name + ".fet_leakage", "board"),
      cfg(config)
{
    applyActivePower(0);
}

void
Board::syncXtalPower(Tick now)
{
    xtal24Comp.setPower(xtal24.power(), now);
    xtal32Comp.setPower(xtal32.power(), now);
}

void
Board::applyActivePower(Tick now)
{
    syncXtalPower(now);
    otherComp.setPower(cfg.dripsPower.boardOther, now);
    activeExtra.setPower(cfg.activePower.boardActive, now);
}

void
Board::applyIdlePower(Tick now)
{
    syncXtalPower(now);
    otherComp.setPower(cfg.dripsPower.boardOther, now);
    activeExtra.setPower(Milliwatts::zero(), now);
}

} // namespace odrips
