/**
 * @file
 * Processor context: the ~200 KB of state that must survive DRIPS
 * (Sec. 6: configuration/status registers, firmware persistent data and
 * patches, fuse values), plus the ~1 KB boot-critical subset (PMU,
 * memory-controller, and MEE state) that always stays on-chip.
 *
 * The blobs hold real pseudo-random bytes so the save/restore paths
 * (SRAM, MEE-protected DRAM, eMRAM) can be verified end-to-end with
 * checksums.
 */

#ifndef ODRIPS_PLATFORM_CONTEXT_HH
#define ODRIPS_PLATFORM_CONTEXT_HH

#include <cstdint>
#include <vector>

#include "sim/random.hh"

namespace odrips
{

/** One region of processor context. */
struct ContextRegion
{
    std::vector<std::uint8_t> bytes;

    /** FNV-1a checksum for end-to-end verification. */
    std::uint64_t checksum() const;

    /** Fill with fresh deterministic content (as if the processor ran
     * and mutated its CSRs). */
    void regenerate(Rng &rng);
};

/** The full processor context. */
class ProcessorContext
{
  public:
    ProcessorContext(std::uint64_t sa_bytes, std::uint64_t cores_bytes,
                     std::uint64_t boot_bytes, std::uint64_t seed = 7);

    /** System-agent context (saved by the SA FSM). */
    ContextRegion &sa() { return sa_; }
    const ContextRegion &sa() const { return sa_; }

    /** Cores + graphics context (saved by the LLC FSM). */
    ContextRegion &cores() { return cores_; }
    const ContextRegion &cores() const { return cores_; }

    /** Boot-critical context (PMU/MC/MEE state; stays in Boot SRAM). */
    ContextRegion &boot() { return boot_; }
    const ContextRegion &boot() const { return boot_; }

    /** Total size excluding the boot subset. */
    std::uint64_t
    transferableBytes() const
    {
        return sa_.bytes.size() + cores_.bytes.size();
    }

    /** Mutate all regions (a new active period ran). */
    void touch();

    /** Combined checksum over all regions. */
    std::uint64_t checksum() const;

  private:
    Rng rng;
    ContextRegion sa_;
    ContextRegion cores_;
    ContextRegion boot_;
};

} // namespace odrips

#endif // ODRIPS_PLATFORM_CONTEXT_HH
