/**
 * @file
 * Processor context: the ~200 KB of state that must survive DRIPS
 * (Sec. 6: configuration/status registers, firmware persistent data and
 * patches, fuse values), plus the ~1 KB boot-critical subset (PMU,
 * memory-controller, and MEE state) that always stays on-chip.
 *
 * The blobs hold real pseudo-random bytes so the save/restore paths
 * (SRAM, MEE-protected DRAM, eMRAM) can be verified end-to-end with
 * checksums.
 *
 * Each region carries an MEE-line-granular dirty bitmap. The default
 * mutation model regenerates every byte on touch() (all lines dirty —
 * the historical behaviour, and what the golden figures are calibrated
 * against). The CsrSubset model instead rewrites only a realistic
 * CSR-sized subset of lines per active window, which lets the context
 * FSMs save steady-state cycles incrementally (O(dirty lines) crypto
 * instead of O(200 KB)).
 */

#ifndef ODRIPS_PLATFORM_CONTEXT_HH
#define ODRIPS_PLATFORM_CONTEXT_HH

#include <cstdint>
#include <vector>

#include "platform/dirty_lines.hh"
#include "sim/random.hh"

namespace odrips
{

/** How touch() mutates the context after an active window. */
enum class ContextMutationKind
{
    /** Regenerate every byte (all lines dirty). The historical model;
     * keeps every save a full save. */
    FullRegenerate,
    /** Rewrite a CSR-sized subset of lines; the rest (firmware
     * patches, fuses) stays clean across cycles, as on real silicon. */
    CsrSubset,
};

/** Mutation-model parameters (part of PlatformConfig). */
struct ContextMutationConfig // ckpt: derived
{
    ContextMutationKind kind = ContextMutationKind::FullRegenerate;
    /** CsrSubset: fraction of each region's lines dirtied per touch().
     * The default ~6% models the mutable CSR share of the context. */
    double dirtyFraction = 0.06;
    /** CsrSubset: lower bound on dirtied lines per region (a wake
     * always updates at least a few CSRs). */
    std::uint64_t minDirtyLines = 4;
};

/** One region of processor context. */
struct ContextRegion
{
    std::vector<std::uint8_t> bytes;
    /** Lines mutated since the last successful off-chip save. */
    DirtyLineMap dirty;

    /** FNV-1a checksum for end-to-end verification. */
    std::uint64_t checksum() const;

    /** Fill with fresh deterministic content (as if the processor ran
     * and mutated its CSRs). Marks every line dirty. */
    void regenerate(Rng &rng);

    /** Rewrite ~@p line_count randomly chosen lines (CSR updates),
     * marking only those lines dirty. */
    void mutateLines(Rng &rng, std::uint64_t line_count);
};

/** The full processor context. */
class ProcessorContext
{
  public:
    ProcessorContext(std::uint64_t sa_bytes, std::uint64_t cores_bytes,
                     std::uint64_t boot_bytes, std::uint64_t seed = 7,
                     const ContextMutationConfig &mutation = {});

    /** System-agent context (saved by the SA FSM). */
    ContextRegion &sa() { return sa_; }
    const ContextRegion &sa() const { return sa_; }

    /** Cores + graphics context (saved by the LLC FSM). */
    ContextRegion &cores() { return cores_; }
    const ContextRegion &cores() const { return cores_; }

    /** Boot-critical context (PMU/MC/MEE state; stays in Boot SRAM). */
    ContextRegion &boot() { return boot_; }
    const ContextRegion &boot() const { return boot_; }

    /** Total size excluding the boot subset. */
    std::uint64_t
    transferableBytes() const
    {
        return sa_.bytes.size() + cores_.bytes.size();
    }

    /** Mutate the regions (a new active period ran) according to the
     * configured mutation model. */
    void touch();

    /** The configured mutation model. */
    const ContextMutationConfig &mutationModel() const { return model; }
    void setMutationModel(const ContextMutationConfig &m) { model = m; }

    /** Mutation RNG stream, for snapshot/restore (sim/checkpoint). */
    Rng &mutationRng() { return rng; }
    const Rng &mutationRng() const { return rng; }

    /** Combined checksum over all regions. */
    std::uint64_t checksum() const;

  private:
    /** Lines to dirty for @p region under the CsrSubset model. */
    std::uint64_t subsetLines(const ContextRegion &region) const;

    Rng rng;
    ContextMutationConfig model; // ckpt: derived
    ContextRegion sa_;
    ContextRegion cores_;
    ContextRegion boot_;
};

} // namespace odrips

#endif // ODRIPS_PLATFORM_CONTEXT_HH
