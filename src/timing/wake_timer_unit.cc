#include "timing/wake_timer_unit.hh"

namespace odrips
{

WakeTimerUnit::WakeTimerUnit(std::string name, ClockDomain &fast_clock,
                             ClockDomain &slow_clock, Crystal &fast_xtal,
                             std::uint64_t pml_transfer_cycles,
                             Tick xtal_restart_latency)
    : Named(std::move(name)), fastClock(fast_clock), slowClock(slow_clock),
      fastXtal(fast_xtal), fast(fast_clock), slow(slow_clock),
      pmlCycles(pml_transfer_cycles), xtalRestart(xtal_restart_latency)
{
}

void
WakeTimerUnit::applyCalibration(const CalibrationResult &calibration)
{
    slow.setStep(calibration.step);
    isCalibrated = true;
}

void
WakeTimerUnit::loadFromProcessor(std::uint64_t tsc_value, Tick now)
{
    ODRIPS_ASSERT(fastXtal.enabled(), "fast crystal off during load");
    // The value travelled pmlCycles fast cycles on the deterministic PML
    // channel; compensate so the local copy matches the source "now".
    fast.load(tsc_value + pmlCycles, now);
    fastClock.ungate();
    mode_ = Mode::Fast;
}

HandoverRecord
WakeTimerUnit::switchToSlow(Tick now)
{
    ODRIPS_ASSERT(mode_ == Mode::Fast, name(),
                  ": switchToSlow outside fast mode");
    ODRIPS_ASSERT(isCalibrated, name(), ": switchToSlow before calibration");

    HandoverRecord rec;
    rec.requested = now;
    // Assert Switch_to_32KHz; the copy happens on the next rising edge
    // of the slow clock (Fig. 3(b)).
    rec.edge = slowClock.nextEdge(now);
    rec.value = fast.valueAt(rec.edge);

    slow.load(rec.value, rec.edge);
    fast.halt(rec.edge);
    fastClock.gate();
    fastXtal.disable();
    mode_ = Mode::Slow;

    rec.completed = rec.edge;
    return rec;
}

HandoverRecord
WakeTimerUnit::switchToFast(Tick now)
{
    ODRIPS_ASSERT(mode_ == Mode::Slow, name(),
                  ": switchToFast outside slow mode");

    HandoverRecord rec;
    rec.requested = now;

    // Restart the 24 MHz crystal and wait for it to stabilize.
    fastXtal.enable();
    fastClock.ungate();
    const Tick xtal_ready = now + xtalRestart;

    // De-assert Switch_to_32KHz; copy happens on the next slow edge
    // after the fast clock is available again.
    rec.edge = slowClock.nextEdge(xtal_ready);
    rec.value = slow.valueAt(rec.edge);

    fast.load(rec.value, rec.edge);
    slow.halt(rec.edge);
    mode_ = Mode::Fast;

    rec.completed = rec.edge;
    return rec;
}

std::uint64_t
WakeTimerUnit::deliverToProcessor(Tick now) const
{
    ODRIPS_ASSERT(mode_ == Mode::Fast, name(),
                  ": deliver outside fast mode");
    // Add the PML compensation so the processor-side timer is correct
    // when the value lands there pmlCycles later.
    return fast.valueAt(now) + pmlCycles;
}

std::uint64_t
WakeTimerUnit::valueAt(Tick t) const
{
    switch (mode_) {
      case Mode::Off:
        return 0;
      case Mode::Fast:
        return fast.valueAt(t);
      case Mode::Slow:
        return slow.valueAt(t);
    }
    return 0;
}

Tick
WakeTimerUnit::wakeTickFor(std::uint64_t target, Tick from) const
{
    switch (mode_) {
      case Mode::Off:
        return maxTick;
      case Mode::Fast:
        return fast.tickWhenReaches(target, from);
      case Mode::Slow:
        return slow.tickWhenReaches(target, from);
    }
    return maxTick;
}

} // namespace odrips
