/**
 * @file
 * Chipset wake-timer unit: the fast-timer/slow-timer pair plus the
 * handover protocol of paper Sec. 4.1.2 / Fig. 3.
 *
 * ODRIPS entry: the processor's main timer value arrives over the PML
 * (with a fixed transfer-latency compensation), the fast timer toggles at
 * 24 MHz, then on the next rising edge of the 32.768 kHz clock the value
 * is copied into the slow timer, the fast clock is gated and the 24 MHz
 * crystal can be turned off.
 *
 * ODRIPS exit: the 24 MHz crystal restarts, on the next slow-clock edge
 * the slow timer's upper 64 bits are copied back into the fast timer,
 * and the value (plus PML compensation) is returned to the processor.
 */

#ifndef ODRIPS_TIMING_WAKE_TIMER_UNIT_HH
#define ODRIPS_TIMING_WAKE_TIMER_UNIT_HH

#include <cstdint>

#include "clock/clock_domain.hh"
#include "clock/crystal.hh"
#include "sim/named.hh"
#include "timing/fast_timer.hh"
#include "timing/slow_timer.hh"
#include "timing/step_calibrator.hh"

namespace odrips
{

/** Outcome of a timer handover (either direction). */
struct HandoverRecord
{
    /** Tick at which the handover was requested. */
    Tick requested = 0;
    /** Tick of the slow-clock rising edge where the copy happened. */
    Tick edge = 0;
    /** Tick at which the handover completed (incl. PML transfer). */
    Tick completed = 0;
    /** Timer value established at the destination timer. */
    std::uint64_t value = 0;

    /** Total handover latency. */
    Tick latency() const { return completed - requested; }
};

/**
 * The chipset-side wake timer: owns the fast/slow timer pair and
 * implements the switch protocol. Also owns the calibrated Step.
 */
class WakeTimerUnit : public Named
{
  public:
    /** Counting mode of the unit. */
    enum class Mode
    {
        Off,   ///< not yet loaded
        Fast,  ///< fast timer counting at 24 MHz
        Slow,  ///< slow timer counting at 32.768 kHz (ODRIPS)
    };

    /**
     * @param name                 instance name
     * @param fast_clock           24 MHz chipset clock domain
     * @param slow_clock           32.768 kHz RTC clock domain
     * @param fast_xtal            the 24 MHz crystal (gets disabled in
     *                             slow mode)
     * @param pml_transfer_cycles  deterministic PML transfer latency in
     *                             fast-clock cycles, added as the timer
     *                             compensation constant
     * @param xtal_restart_latency time for the 24 MHz crystal to restart
     *                             and stabilize on ODRIPS exit
     */
    WakeTimerUnit(std::string name, ClockDomain &fast_clock,
                  ClockDomain &slow_clock, Crystal &fast_xtal,
                  std::uint64_t pml_transfer_cycles,
                  Tick xtal_restart_latency);

    /** Program the Step from a calibration result (required once after
     * reset, before the first slow-mode entry). */
    void applyCalibration(const CalibrationResult &calibration);

    bool calibrated() const { return isCalibrated; }
    Mode mode() const { return mode_; }

    /**
     * Load the processor's timer value (as sent over the PML at
     * @p now); the unit compensates for the transfer latency and starts
     * the fast timer. This is the first step of ODRIPS entry.
     */
    void loadFromProcessor(std::uint64_t tsc_value, Tick now);

    /**
     * Switch counting to the slow timer (asserts Switch_to_32KHz and
     * waits for the next slow-clock rising edge). Gates the fast clock
     * and disables the 24 MHz crystal.
     */
    HandoverRecord switchToSlow(Tick now);

    /**
     * Switch counting back to the fast timer on ODRIPS exit: restart the
     * 24 MHz crystal, wait for a slow-clock edge, copy the upper 64 bits
     * into the fast timer.
     */
    HandoverRecord switchToFast(Tick now);

    /**
     * Deliver the fast-timer value back to the processor over the PML at
     * @p now; the returned value includes the transfer compensation so
     * the processor's timer is correct on arrival.
     */
    std::uint64_t deliverToProcessor(Tick now) const;

    /** Current timer value, regardless of mode. */
    std::uint64_t valueAt(Tick t) const;

    /**
     * Tick at which the timer reaches @p target, honouring the current
     * mode's granularity (cycle-accurate in fast mode, slow-edge
     * granularity in slow mode).
     */
    Tick wakeTickFor(std::uint64_t target, Tick from) const;

    const FastTimer &fastTimer() const { return fast; }
    const SlowTimer &slowTimer() const { return slow; }
    std::uint64_t pmlCompensationCycles() const { return pmlCycles; }
    Tick xtalRestartLatency() const { return xtalRestart; }

  private:
    ClockDomain &fastClock;
    ClockDomain &slowClock;
    Crystal &fastXtal;
    FastTimer fast;
    SlowTimer slow;
    std::uint64_t pmlCycles;
    Tick xtalRestart;
    Mode mode_ = Mode::Off;
    bool isCalibrated = false;
};

} // namespace odrips

#endif // ODRIPS_TIMING_WAKE_TIMER_UNIT_HH
