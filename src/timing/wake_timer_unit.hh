/**
 * @file
 * Chipset wake-timer unit: the fast-timer/slow-timer pair plus the
 * handover protocol of paper Sec. 4.1.2 / Fig. 3.
 *
 * ODRIPS entry: the processor's main timer value arrives over the PML
 * (with a fixed transfer-latency compensation), the fast timer toggles at
 * 24 MHz, then on the next rising edge of the 32.768 kHz clock the value
 * is copied into the slow timer, the fast clock is gated and the 24 MHz
 * crystal can be turned off.
 *
 * ODRIPS exit: the 24 MHz crystal restarts, on the next slow-clock edge
 * the slow timer's upper 64 bits are copied back into the fast timer,
 * and the value (plus PML compensation) is returned to the processor.
 */

#ifndef ODRIPS_TIMING_WAKE_TIMER_UNIT_HH
#define ODRIPS_TIMING_WAKE_TIMER_UNIT_HH

#include <cstdint>

#include "clock/clock_domain.hh"
#include "clock/crystal.hh"
#include "sim/checkpoint/serializer.hh"
#include "sim/named.hh"
#include "timing/fast_timer.hh"
#include "timing/slow_timer.hh"
#include "timing/step_calibrator.hh"

namespace odrips
{

/** Outcome of a timer handover (either direction). */
struct HandoverRecord
{
    /** Tick at which the handover was requested. */
    Tick requested = 0;
    /** Tick of the slow-clock rising edge where the copy happened. */
    Tick edge = 0;
    /** Tick at which the handover completed (incl. PML transfer). */
    Tick completed = 0;
    /** Timer value established at the destination timer. */
    std::uint64_t value = 0;

    /** Total handover latency. */
    Tick latency() const { return completed - requested; }
};

/**
 * The chipset-side wake timer: owns the fast/slow timer pair and
 * implements the switch protocol. Also owns the calibrated Step.
 */
class WakeTimerUnit : public Named
{
  public:
    /** Counting mode of the unit. */
    enum class Mode
    {
        Off,   ///< not yet loaded
        Fast,  ///< fast timer counting at 24 MHz
        Slow,  ///< slow timer counting at 32.768 kHz (ODRIPS)
    };

    /**
     * @param name                 instance name
     * @param fast_clock           24 MHz chipset clock domain
     * @param slow_clock           32.768 kHz RTC clock domain
     * @param fast_xtal            the 24 MHz crystal (gets disabled in
     *                             slow mode)
     * @param pml_transfer_cycles  deterministic PML transfer latency in
     *                             fast-clock cycles, added as the timer
     *                             compensation constant
     * @param xtal_restart_latency time for the 24 MHz crystal to restart
     *                             and stabilize on ODRIPS exit
     */
    WakeTimerUnit(std::string name, ClockDomain &fast_clock,
                  ClockDomain &slow_clock, Crystal &fast_xtal,
                  std::uint64_t pml_transfer_cycles,
                  Tick xtal_restart_latency);

    /** Program the Step from a calibration result (required once after
     * reset, before the first slow-mode entry). */
    void applyCalibration(const CalibrationResult &calibration);

    bool calibrated() const { return isCalibrated; }
    Mode mode() const { return mode_; }

    /**
     * Load the processor's timer value (as sent over the PML at
     * @p now); the unit compensates for the transfer latency and starts
     * the fast timer. This is the first step of ODRIPS entry.
     */
    void loadFromProcessor(std::uint64_t tsc_value, Tick now);

    /**
     * Switch counting to the slow timer (asserts Switch_to_32KHz and
     * waits for the next slow-clock rising edge). Gates the fast clock
     * and disables the 24 MHz crystal.
     */
    HandoverRecord switchToSlow(Tick now);

    /**
     * Switch counting back to the fast timer on ODRIPS exit: restart the
     * 24 MHz crystal, wait for a slow-clock edge, copy the upper 64 bits
     * into the fast timer.
     */
    HandoverRecord switchToFast(Tick now);

    /**
     * Deliver the fast-timer value back to the processor over the PML at
     * @p now; the returned value includes the transfer compensation so
     * the processor's timer is correct on arrival.
     */
    std::uint64_t deliverToProcessor(Tick now) const;

    /** Current timer value, regardless of mode. */
    std::uint64_t valueAt(Tick t) const;

    /**
     * Tick at which the timer reaches @p target, honouring the current
     * mode's granularity (cycle-accurate in fast mode, slow-edge
     * granularity in slow mode).
     */
    Tick wakeTickFor(std::uint64_t target, Tick from) const;

    const FastTimer &fastTimer() const { return fast; }
    const SlowTimer &slowTimer() const { return slow; }
    std::uint64_t pmlCompensationCycles() const { return pmlCycles; }
    Tick xtalRestartLatency() const { return xtalRestart; }

    /**
     * @name Checkpoint support
     * Serializes both timers (fixed-point values as raw 128-bit halves
     * plus fraction width), the mode, and the calibration flag; the
     * crystal on/off state is restored by the clock section.
     * @{
     */
    void
    saveState(ckpt::Writer &w) const
    {
        w.u64(fast.baseValueState());
        w.i64(fast.baseTickState());
        w.b(fast.running());

        const FixedUint &base = slow.baseValueState();
        const FixedUint &step = slow.stepValue();
        w.u32(base.fractionBits());
        w.u64(static_cast<std::uint64_t>(base.raw()));
        w.u64(static_cast<std::uint64_t>(base.raw() >> 64));
        w.u32(step.fractionBits());
        w.u64(static_cast<std::uint64_t>(step.raw()));
        w.u64(static_cast<std::uint64_t>(step.raw() >> 64));
        w.i64(slow.baseTickState());
        w.b(slow.running());

        w.u8(static_cast<std::uint8_t>(mode_));
        w.b(isCalibrated);
    }

    void
    loadState(ckpt::Reader &r)
    {
        const std::uint64_t fastBase = r.u64();
        const Tick fastTick = r.i64();
        const bool fastRunning = r.b();
        fast.restoreState(fastBase, fastTick, fastRunning);

        const std::uint32_t baseFrac = r.u32();
        uint128 baseRaw = r.u64();
        baseRaw |= static_cast<uint128>(r.u64()) << 64;
        const std::uint32_t stepFrac = r.u32();
        uint128 stepRaw = r.u64();
        stepRaw |= static_cast<uint128>(r.u64()) << 64;
        if (baseFrac > 64 || stepFrac > 64)
            throw ckpt::SnapshotError("fixed-point fraction too wide");
        const Tick slowTick = r.i64();
        const bool slowRunning = r.b();
        slow.restoreState(FixedUint::fromRaw(baseRaw, baseFrac),
                          FixedUint::fromRaw(stepRaw, stepFrac),
                          slowTick, slowRunning);

        const std::uint8_t m = r.u8();
        if (m > static_cast<std::uint8_t>(Mode::Slow))
            throw ckpt::SnapshotError("wake-timer mode out of range");
        mode_ = static_cast<Mode>(m);
        isCalibrated = r.b();
    }
    /** @} */

  private:
    ClockDomain &fastClock;
    ClockDomain &slowClock;
    Crystal &fastXtal;
    FastTimer fast;
    SlowTimer slow;
    std::uint64_t pmlCycles; // ckpt: derived
    Tick xtalRestart;
    Mode mode_ = Mode::Off;
    bool isCalibrated = false;
};

} // namespace odrips

#endif // ODRIPS_TIMING_WAKE_TIMER_UNIT_HH
