/**
 * @file
 * Step calibration (paper Sec. 4.1.3).
 *
 * The slow timer must advance by a fixed-point Step per slow-clock cycle
 * so that it tracks the (switched-off) fast timer. The Step is the
 * average fast/slow frequency ratio measured over N_slow = 2^f slow
 * cycles: counting N_fast fast edges within that window and dividing by
 * 2^f (a binary-point shift).
 *
 * This module implements:
 *  - Eq. 2: required integer bits  m = floor(log2(fast/slow)) + 1
 *  - Eq. 4: required fraction bits f for a target precision (e.g. 1 ppb)
 *  - the calibration "measurement" itself, computed exactly from the two
 *    crystals' actual (ppm-deviated) frequencies
 *  - drift evaluation of a calibrated Step over a given interval
 */

#ifndef ODRIPS_TIMING_STEP_CALIBRATOR_HH
#define ODRIPS_TIMING_STEP_CALIBRATOR_HH

#include <cstdint>

#include "clock/crystal.hh"
#include "sim/ticks.hh"
#include "sim/units.hh"
#include "timing/fixed_point.hh"

namespace odrips
{

/** Result of a Step calibration run. */
struct CalibrationResult
{
    /** The calibrated fixed-point Step (fast cycles per slow cycle). */
    FixedUint step{0};
    /** Integer bits m of the Step representation. */
    unsigned integerBits = 0; // ckpt: derived
    /** Fraction bits f of the Step representation. */
    unsigned fractionBits = 0;
    /** Number of slow cycles observed (N_slow = 2^f). */
    std::uint64_t slowCycles = 0; // ckpt: derived
    /** Number of fast cycles counted within the window (N_fast). */
    std::uint64_t fastCycles = 0; // ckpt: skip(calibration telemetry; step drives the timer)
    /** Wall-clock duration of the calibration window. */
    Seconds duration{};
};

/**
 * Computes Step representations and performs calibration measurements
 * against a pair of crystals.
 */
class StepCalibrator
{
  public:
    /**
     * @param fast_xtal the fast crystal (e.g. 24 MHz XTAL)
     * @param slow_xtal the slow crystal (e.g. 32.768 kHz RTC XTAL)
     */
    StepCalibrator(const Crystal &fast_xtal, const Crystal &slow_xtal)
        : fast(fast_xtal), slow(slow_xtal)
    {}

    /** Eq. 2: integer bits needed for the frequency ratio. */
    static unsigned requiredIntegerBits(Hertz fast_clock, Hertz slow_clock);

    /**
     * Eq. 4: fraction bits needed so the counting drift stays below one
     * fast cycle within @p precision_cycles fast cycles (1e9 for 1 ppb).
     */
    static unsigned requiredFractionBits(Hertz fast_clock, Hertz slow_clock,
                                         std::uint64_t precision_cycles);

    /**
     * Run the calibration over N_slow = 2^f slow cycles. The fast-edge
     * count is derived exactly from the crystals' actual frequencies
     * (the hardware counter would observe the same count, +/- one edge
     * of phase uncertainty, which @p phase_fast_cycles models).
     */
    CalibrationResult calibrate(unsigned fraction_bits,
                                std::uint64_t phase_fast_cycles = 0) const;

    /** Calibrate with the fraction width required for 1 ppb. */
    CalibrationResult calibrateForPpb() const;

    /**
     * Evaluate the counting drift of a calibrated Step: simulate
     * @p slow_cycles slow-timer increments and compare against the exact
     * number of fast cycles in the same wall-clock interval.
     *
     * @return drift in fast-timer cycles (estimated - actual).
     */
    double evaluateDriftCycles(const CalibrationResult &calibration,
                               std::uint64_t slow_cycles) const;

    /** Drift in parts-per-billion over @p slow_cycles slow cycles. */
    double evaluateDriftPpb(const CalibrationResult &calibration,
                            std::uint64_t slow_cycles) const;

    /** Exact fast/slow frequency ratio (actual frequencies). */
    double
    actualRatio() const
    {
        return fast.actualHz() / slow.actualHz();
    }

  private:
    const Crystal &fast;
    const Crystal &slow;
};

} // namespace odrips

#endif // ODRIPS_TIMING_STEP_CALIBRATOR_HH
