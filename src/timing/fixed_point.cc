#include "timing/fixed_point.hh"

#include <sstream>

namespace odrips
{

std::string
FixedUint::toString() const
{
    std::ostringstream os;
    os << integerPart();
    if (fracBits > 0) {
        os << " + 0x" << std::hex << fractionPart() << std::dec << "/2^"
           << fracBits;
    }
    return os.str();
}

} // namespace odrips
