/**
 * @file
 * Slow wake-up timer: a (64 + f)-bit fixed-point counter incremented by
 * the calibrated Step every slow-clock (32.768 kHz) cycle
 * (Slow_Timer += Step, paper Sec. 4.1).
 */

#ifndef ODRIPS_TIMING_SLOW_TIMER_HH
#define ODRIPS_TIMING_SLOW_TIMER_HH

#include <cstdint>

#include "clock/clock_domain.hh"
#include "sim/logging.hh"
#include "sim/ticks.hh"
#include "timing/fixed_point.hh"

namespace odrips
{

/** Fixed-point slow timer driven by the RTC clock. */
class SlowTimer
{
  public:
    explicit SlowTimer(const ClockDomain &source_clock)
        : clock(source_clock), base(0), step(0)
    {}

    /** Program the Step increment (from a CalibrationResult). */
    void
    setStep(const FixedUint &s)
    {
        step = s;
    }

    const FixedUint &stepValue() const { return step; }

    /**
     * Load the fast-timer value into the slow timer at time @p t
     * (the copy happens on a slow-clock rising edge in hardware).
     */
    void
    load(std::uint64_t fast_value, Tick t)
    {
        base = FixedUint::fromInteger(fast_value, step.fractionBits());
        baseTick = t;
        running_ = true;
    }

    /** Stop counting; the value freezes. */
    void
    halt(Tick t)
    {
        base = fixedValueAt(t);
        baseTick = t;
        running_ = false;
    }

    bool running() const { return running_; }

    /** Full fixed-point value at time @p t. */
    FixedUint
    fixedValueAt(Tick t) const
    {
        ODRIPS_ASSERT(t >= baseTick, "slow timer read in the past");
        if (!running_)
            return base;
        const std::uint64_t cycles = clock.cyclesIn(baseTick, t);
        return base + step.times(cycles);
    }

    /** Integer (upper 64-bit) part: the fast-timer estimate that is
     * copied back on ODRIPS exit. */
    std::uint64_t
    valueAt(Tick t) const
    {
        return fixedValueAt(t).integerPart();
    }

    /**
     * Tick of the slow-clock edge at which the integer value first
     * reaches @p target (wake events have slow-cycle granularity while
     * in ODRIPS). Returns maxTick when halted.
     */
    Tick
    tickWhenReaches(std::uint64_t target, Tick from) const
    {
        if (!running_ || step.raw() == 0)
            return maxTick;
        const FixedUint now_val = fixedValueAt(from);
        const uint128 target_raw = static_cast<uint128>(target)
                                   << step.fractionBits();
        if (now_val.raw() >= target_raw)
            return from;
        const uint128 deficit = target_raw - now_val.raw();
        // ceil(deficit / step) slow cycles from the last edge <= from.
        const uint128 cycles = (deficit + step.raw() - 1) / step.raw();
        const Tick period = clock.period();
        const Tick last_edge = (from / period) * period;
        return last_edge + static_cast<Tick>(cycles) * period;
    }

    const ClockDomain &clockDomain() const { return clock; }

    /** @name Checkpoint support @{ */
    const FixedUint &baseValueState() const { return base; }
    Tick baseTickState() const { return baseTick; }

    void
    restoreState(const FixedUint &base_value, const FixedUint &step_value,
                 Tick base_tick, bool running)
    {
        base = base_value;
        step = step_value;
        baseTick = base_tick;
        running_ = running;
    }
    /** @} */

  private:
    const ClockDomain &clock;
    FixedUint base;
    FixedUint step;
    Tick baseTick = 0;
    bool running_ = false;
};

} // namespace odrips

#endif // ODRIPS_TIMING_SLOW_TIMER_HH
