#include "timing/step_calibrator.hh"

#include <cmath>

namespace odrips
{

unsigned
StepCalibrator::requiredIntegerBits(Hertz fast_clock, Hertz slow_clock)
{
    ODRIPS_ASSERT(fast_clock > slow_clock && slow_clock > Hertz{},
                  "fast clock must be faster than slow clock");
    return static_cast<unsigned>(
               std::floor(std::log2(fast_clock / slow_clock)))
           + 1;
}

unsigned
StepCalibrator::requiredFractionBits(Hertz fast_clock, Hertz slow_clock,
                                     std::uint64_t precision_cycles)
{
    // Eq. 4: N_slow = 2^f must exceed (precision_cycles - 1) / ratio so
    // that a quantization error below one raw LSB per slow cycle cannot
    // accumulate to a full fast cycle within the precision window.
    const double ratio = fast_clock / slow_clock;
    const double min_slow_cycles =
        (static_cast<double>(precision_cycles) - 1.0) / ratio;
    unsigned f = 0;
    while (std::ldexp(1.0, static_cast<int>(f)) <= min_slow_cycles)
        ++f;
    return f;
}

CalibrationResult
StepCalibrator::calibrate(unsigned fraction_bits,
                          std::uint64_t phase_fast_cycles) const
{
    CalibrationResult r;
    r.fractionBits = fraction_bits;
    r.integerBits = requiredIntegerBits(fast.actualFrequency(),
                                        slow.actualFrequency());
    r.slowCycles = std::uint64_t{1} << fraction_bits;

    // Exact count of fast edges inside N_slow slow periods. A hardware
    // counter gated by the slow clock would see this count give or take
    // the initial phase offset, modelled by phase_fast_cycles.
    const double window_seconds =
        static_cast<double>(r.slowCycles) / slow.actualHz();
    r.duration = Seconds(window_seconds);
    r.fastCycles = static_cast<std::uint64_t>(
                       std::floor(window_seconds * fast.actualHz()))
                   + phase_fast_cycles;

    // Dividing N_fast by N_slow = 2^f is a binary-point placement: the
    // raw fixed-point Step value *is* N_fast.
    r.step = FixedUint::fromRaw(static_cast<uint128>(r.fastCycles),
                                fraction_bits);
    return r;
}

CalibrationResult
StepCalibrator::calibrateForPpb() const
{
    const unsigned f = requiredFractionBits(
        fast.nominalFrequency(), slow.nominalFrequency(), 1000000000ULL);
    return calibrate(f);
}

double
StepCalibrator::evaluateDriftCycles(const CalibrationResult &calibration,
                                    std::uint64_t slow_cycles) const
{
    // Estimated fast count after slow_cycles increments of Step.
    const FixedUint estimated = calibration.step.times(slow_cycles);
    const double estimated_cycles = estimated.toDouble();

    // Actual fast count over the same wall-clock span.
    const double span_seconds =
        static_cast<double>(slow_cycles) / slow.actualHz();
    const double actual_cycles = span_seconds * fast.actualHz();

    return estimated_cycles - actual_cycles;
}

double
StepCalibrator::evaluateDriftPpb(const CalibrationResult &calibration,
                                 std::uint64_t slow_cycles) const
{
    const double span_seconds =
        static_cast<double>(slow_cycles) / slow.actualHz();
    const double actual_cycles = span_seconds * fast.actualHz();
    if (actual_cycles <= 0)
        return 0.0;
    return evaluateDriftCycles(calibration, slow_cycles) / actual_cycles
           * 1e9;
}

} // namespace odrips
