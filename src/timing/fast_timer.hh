/**
 * @file
 * Fast wake-up timer: a 64-bit counter incremented once per fast-clock
 * cycle (Fast_Timer += 1 at 24 MHz). The simulator computes its value
 * arithmetically from the load point instead of toggling per cycle.
 */

#ifndef ODRIPS_TIMING_FAST_TIMER_HH
#define ODRIPS_TIMING_FAST_TIMER_HH

#include <cstdint>

#include "clock/clock_domain.hh"
#include "sim/logging.hh"
#include "sim/ticks.hh"

namespace odrips
{

/** 64-bit fast timer clocked by a fast clock domain. */
class FastTimer
{
  public:
    explicit FastTimer(const ClockDomain &source_clock)
        : clock(source_clock)
    {}

    /** Load a counter value at time @p t and start counting. */
    void
    load(std::uint64_t value, Tick t)
    {
        baseValue = value;
        baseTick = t;
        running_ = true;
    }

    /** Stop counting at time @p t; value freezes at valueAt(t). */
    void
    halt(Tick t)
    {
        baseValue = valueAt(t);
        baseTick = t;
        running_ = false;
    }

    bool running() const { return running_; }

    /** Counter value at time @p t (>= the last load/halt point). */
    std::uint64_t
    valueAt(Tick t) const
    {
        ODRIPS_ASSERT(t >= baseTick, "fast timer read in the past");
        if (!running_)
            return baseValue;
        return baseValue + clock.cyclesIn(baseTick, t);
    }

    /** Tick at which the counter first reaches @p target (maxTick if
     * halted or already past). */
    Tick
    tickWhenReaches(std::uint64_t target, Tick from) const
    {
        if (!running_)
            return maxTick;
        const std::uint64_t current = valueAt(from);
        if (current >= target)
            return from;
        const std::uint64_t remaining = target - current;
        return from + static_cast<Tick>(remaining) * clock.period();
    }

    const ClockDomain &clockDomain() const { return clock; }

    /** @name Checkpoint support @{ */
    std::uint64_t baseValueState() const { return baseValue; }
    Tick baseTickState() const { return baseTick; }

    void
    restoreState(std::uint64_t base_value, Tick base_tick, bool running)
    {
        baseValue = base_value;
        baseTick = base_tick;
        running_ = running;
    }
    /** @} */

  private:
    const ClockDomain &clock;
    std::uint64_t baseValue = 0;
    Tick baseTick = 0;
    bool running_ = false;
};

} // namespace odrips

#endif // ODRIPS_TIMING_FAST_TIMER_HH
