/**
 * @file
 * Unsigned fixed-point arithmetic for the slow wake-up timer.
 *
 * The paper's slow timer is a (64 + f)-bit fixed-point counter that is
 * incremented by a fixed-point Step value every 32.768 kHz cycle
 * (Sec. 4.1.3). We store raw values in an unsigned 128-bit integer with a
 * configurable number of fraction bits, which comfortably covers the
 * paper's 64 + 21 bits.
 */

#ifndef ODRIPS_TIMING_FIXED_POINT_HH
#define ODRIPS_TIMING_FIXED_POINT_HH

#include <cstdint>
#include <string>

#include "sim/logging.hh"
#include "sim/units.hh"

namespace odrips
{

/** 128-bit unsigned integer used as the raw fixed-point container. */
using uint128 = unsigned __int128;

/**
 * Unsigned fixed-point number: raw / 2^fractionBits.
 *
 * The fraction width is a runtime property so that the ablation bench can
 * sweep it; two operands of an arithmetic operation must agree on the
 * width.
 */
class FixedUint
{
  public:
    /** Zero with the given fraction width. */
    explicit FixedUint(unsigned fraction_bits = 0)
        : fracBits(fraction_bits), raw_(0)
    {
        ODRIPS_ASSERT(fraction_bits <= 64, "fraction too wide");
    }

    /** Construct from a raw container value. */
    static FixedUint
    fromRaw(uint128 raw, unsigned fraction_bits)
    {
        FixedUint v(fraction_bits);
        v.raw_ = raw;
        return v;
    }

    /** Construct from an integer (no fractional part). */
    static FixedUint
    fromInteger(std::uint64_t integer, unsigned fraction_bits)
    {
        return fromRaw(static_cast<uint128>(integer) << fraction_bits,
                       fraction_bits);
    }

    /**
     * Construct the exact ratio numerator/denominator rounded down to
     * the fixed-point grid. This is the Step computation: with
     * denominator = 2^f the division is just a shift of the binary point
     * (Sec. 4.1.3).
     */
    static FixedUint
    fromRatio(std::uint64_t numerator, std::uint64_t denominator,
              unsigned fraction_bits)
    {
        ODRIPS_ASSERT(denominator != 0, "ratio denominator is zero");
        const uint128 scaled = static_cast<uint128>(numerator)
                               << fraction_bits;
        return fromRaw(scaled / denominator, fraction_bits);
    }

    unsigned fractionBits() const { return fracBits; }
    uint128 raw() const { return raw_; }

    /** Integer part (floor); asserts it fits the 64-bit counter. */
    std::uint64_t
    integerPart() const
    {
        return narrow<std::uint64_t>(raw_ >> fracBits);
    }

    /** Fractional part as raw bits (in [0, 2^fracBits)). */
    std::uint64_t
    fractionPart() const
    {
        if (fracBits == 0)
            return 0;
        const uint128 mask = (static_cast<uint128>(1) << fracBits) - 1;
        return narrow<std::uint64_t>(raw_ & mask);
    }

    /** Value as a double (may lose precision; for reporting only). */
    double
    toDouble() const
    {
        return static_cast<double>(raw_) /
               static_cast<double>(static_cast<uint128>(1) << fracBits);
    }

    FixedUint &
    operator+=(const FixedUint &other)
    {
        ODRIPS_ASSERT(fracBits == other.fracBits,
                      "fixed-point width mismatch");
        raw_ += other.raw_;
        return *this;
    }

    FixedUint
    operator+(const FixedUint &other) const
    {
        FixedUint r = *this;
        r += other;
        return r;
    }

    /** Multiply by a plain integer (e.g. Step * elapsed slow cycles). */
    FixedUint
    times(std::uint64_t k) const
    {
        return fromRaw(raw_ * static_cast<uint128>(k), fracBits);
    }

    bool
    operator==(const FixedUint &other) const
    {
        return fracBits == other.fracBits && raw_ == other.raw_;
    }

    bool
    operator<(const FixedUint &other) const
    {
        ODRIPS_ASSERT(fracBits == other.fracBits,
                      "fixed-point width mismatch");
        return raw_ < other.raw_;
    }

    /** Render as "integer.fraction(hex)" for diagnostics. */
    std::string toString() const;

  private:
    unsigned fracBits;
    uint128 raw_;
};

} // namespace odrips

#endif // ODRIPS_TIMING_FIXED_POINT_HH
