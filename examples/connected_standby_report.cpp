/**
 * @file
 * Full connected-standby scenario: a night of standby with kernel
 * maintenance and push notifications, evaluated under every technique
 * configuration of the paper, with a power-analyzer cross-check and a
 * DRIPS power breakdown per configuration.
 *
 * Usage: connected_standby_report [cycles] [seed]
 */

#include <cstdlib>
#include <iostream>

#include "core/odrips.hh"

using namespace odrips;

int
main(int argc, char **argv)
{
    Logger::quiet(true);

    const std::size_t cycles =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10;
    const std::uint64_t seed =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2026;

    PlatformConfig cfg = skylakeConfig();
    cfg.workload.seed = seed;
    // A phone-like scenario: push notifications every ~90 s on top of
    // the ~30 s kernel-maintenance timer.
    cfg.workload.networkWakeMeanSeconds = 90.0;

    StandbyWorkloadGenerator gen(cfg.workload);
    const StandbyTrace trace = gen.generate(cycles);

    std::cout << "Connected-standby scenario: " << cycles
              << " wake cycles, mean idle dwell "
              << stats::fmtTime(trace.meanIdleSeconds())
              << ", mean active window "
              << stats::fmtTime(
                     trace.meanActiveSeconds(cfg.coreFrequencyHz))
              << "\n(kernel timer ~30 s + network pushes ~90 s)\n\n";

    stats::Table table("technique comparison on this trace");
    table.setHeader({"configuration", "avg power", "savings",
                     "idle power", "entry", "exit", "sampled avg",
                     "context"});

    double baseline_avg = 0.0;
    for (const TechniqueSet &tech :
         {TechniqueSet::baseline(), TechniqueSet::wakeupOffOnly(),
          TechniqueSet::aonIoGated(), TechniqueSet::ctxSgxDram(),
          TechniqueSet::odrips(), TechniqueSet::odripsMram()}) {
        Platform platform(cfg);
        StandbySimulator sim(platform, tech);
        const StandbyResult r = sim.run(trace, /*arm_analyzer=*/true);
        if (baseline_avg == 0.0)
            baseline_avg = r.averageBatteryPower;

        table.addRow(
            {tech.label(), stats::fmtPower(r.averageBatteryPower),
             stats::fmtPercent(1.0 -
                               r.averageBatteryPower / baseline_avg),
             stats::fmtPower(r.idleBatteryPower),
             stats::fmtTime(ticksToSeconds(r.meanEntryLatency)),
             stats::fmtTime(ticksToSeconds(r.meanExitLatency)),
             stats::fmtPower(r.analyzerAverage),
             r.contextIntact ? "intact" : "CORRUPT"});
    }
    table.print(std::cout);

    // Battery-life projection for a phone-class 40 Wh battery.
    std::cout << "\nStandby battery-life projection (40 Wh battery):\n";
    for (const TechniqueSet &tech :
         {TechniqueSet::baseline(), TechniqueSet::odrips()}) {
        const CyclePowerProfile p = measureCycleProfile(cfg, tech);
        const double avg = standardWorkloadAverage(p, cfg);
        std::cout << "  " << tech.label() << ": "
                  << stats::fmt(40.0 / (avg * 1000.0) / 24.0, 1)
                  << " days\n";
    }

    // Idle breakdown under ODRIPS: what is left to optimize.
    Platform platform(cfg);
    StandbyFlows flows(platform, TechniqueSet::odrips());
    flows.enterIdle();
    std::cout << '\n';
    snapshotBreakdown(platform.pm, platform.pd)
        .toTable("remaining ODRIPS idle power")
        .print(std::cout);
    return 0;
}
