/**
 * @file
 * Walkthrough of Technique 3 (Sec. 6): the processor context moving
 * through the memory encryption engine into protected DRAM, and the
 * attacks the SGX-style protection defeats — disclosure, tampering,
 * and rollback/replay — while the platform sleeps.
 */

#include <iomanip>
#include <iostream>

#include "core/odrips.hh"

using namespace odrips;

namespace
{

void
dumpBytes(const char *label, const std::vector<std::uint8_t> &bytes,
          std::size_t count = 16)
{
    std::cout << "  " << label << ": ";
    for (std::size_t i = 0; i < count && i < bytes.size(); ++i) {
        std::cout << std::hex << std::setw(2) << std::setfill('0')
                  << static_cast<int>(bytes[i]);
    }
    std::cout << std::dec << "...\n";
}

} // namespace

int
main()
{
    Logger::quiet(true);

    Platform platform(skylakeConfig());
    StandbyFlows flows(platform, TechniqueSet::odrips());

    std::cout << "Technique 3 walkthrough: context to SGX-protected "
                 "DRAM\n\n";

    // --- Save the context by entering ODRIPS ---
    const std::uint64_t checksum_before =
        platform.processor.context.checksum();
    flows.enterIdle();

    std::cout << "1. ODRIPS entered. The SA and LLC FSMs streamed "
              << (platform.contextRegionSize() >> 10)
              << " KB of context through the MEE ("
              << stats::fmtTime(ticksToSeconds(
                     flows.lastCycle().contextSave->latency))
              << ").\n";

    const std::vector<std::uint8_t> plaintext(
        platform.processor.context.sa().bytes.begin(),
        platform.processor.context.sa().bytes.begin() + 16);
    const auto ciphertext =
        platform.memory->store().read(platform.contextRegionBase(), 16);
    std::cout << "\n2. Confidentiality — what an attacker probing the "
                 "DRAM bus sees:\n";
    dumpBytes("context plaintext ", plaintext);
    dumpBytes("DRAM ciphertext   ", ciphertext);

    std::cout << "\n3. The S/R SRAMs are off ("
              << stats::fmtPower(platform.processor.saSramComp.power() +
                                 platform.processor.coresSramComp.power())
              << "); only the "
              << platform.processor.bootSram.capacityBytes()
              << " B Boot SRAM retains the MEE root (counter = "
              << platform.mee->exportRoot().rootCounter << ").\n";

    // --- Attack 1: Rowhammer-style bit flip ---
    std::cout << "\n4. Attack: flipping one DRAM bit inside the "
                 "sleeping context...\n";
    platform.memory->store().flipBit(platform.contextRegionBase() + 4096,
                                     2);
    platform.eq.run(platform.now() + oneMs);
    flows.exitIdle();
    std::cout << "   exit flow: restore authentic = "
              << (flows.lastCycle().contextRestore->authentic ? "yes"
                                                              : "NO")
              << ", context intact = "
              << (flows.lastCycle().contextIntact ? "yes" : "NO")
              << "  -> tamper DETECTED\n";

    // --- Attack 2: rollback/replay across a cycle ---
    std::cout << "\n5. Attack: replaying a stale-but-consistent DRAM "
                 "snapshot (rollback)...\n";
    platform.processor.context.touch();
    flows.enterIdle(); // writes fresh context (version counters bump)
    const auto old_data = platform.memory->store().read(
        platform.contextRegionBase(), platform.contextRegionSize());
    const auto old_meta = platform.memory->store().read(
        platform.mee->config().metaBase, platform.mee->metadataBytes());
    platform.eq.run(platform.now() + oneMs);
    flows.exitIdle();

    platform.processor.context.touch();
    flows.enterIdle(); // second save: newer state in DRAM
    // Roll DRAM (data + tree metadata) back to the older snapshot.
    platform.memory->store().write(platform.contextRegionBase(),
                                   old_data);
    platform.memory->store().write(platform.mee->config().metaBase,
                                   old_meta);
    platform.eq.run(platform.now() + oneMs);
    flows.exitIdle();
    std::cout << "   exit flow: restore authentic = "
              << (flows.lastCycle().contextRestore->authentic ? "yes"
                                                              : "NO")
              << "  -> rollback DETECTED (on-chip root counter = "
              << platform.mee->exportRoot().rootCounter
              << " outlives DRAM)\n";

    // --- Clean cycle for contrast ---
    platform.processor.context.touch();
    flows.enterIdle();
    platform.eq.run(platform.now() + oneMs);
    flows.exitIdle();
    std::cout << "\n6. Clean cycle: authentic = "
              << (flows.lastCycle().contextRestore->authentic ? "yes"
                                                              : "NO")
              << ", intact = "
              << (flows.lastCycle().contextIntact ? "yes" : "NO")
              << " (checksum before first save: 0x" << std::hex
              << checksum_before << std::dec << ")\n";

    const MeeStats &mee = platform.mee->statistics();
    std::cout << "\nMEE totals: " << mee.linesWritten
              << " lines encrypted, " << mee.linesRead
              << " verified+decrypted, " << mee.authFailures
              << " authentication failures raised.\n";
    return 0;
}
