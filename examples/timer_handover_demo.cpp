/**
 * @file
 * Walkthrough of Technique 1 (Sec. 4): calibrating the slow-timer Step,
 * migrating the wake timer from the processor to the chipset, counting
 * through a long ODRIPS dwell on the 32.768 kHz clock, and handing the
 * count back — with a cycle-level accuracy audit at each stage
 * (the Fig. 3(b) switching protocol).
 */

#include <iostream>

#include "core/odrips.hh"

using namespace odrips;

namespace
{

void
audit(const char *stage, std::uint64_t counted, double expected)
{
    const double err = static_cast<double>(counted) - expected;
    std::cout << "  " << stage << ": counter = " << counted
              << ", ideal = " << stats::fmt(expected, 1) << ", error = "
              << stats::fmt(err, 1) << " fast cycles\n";
}

} // namespace

int
main()
{
    Logger::quiet(true);

    // Board crystals with realistic manufacturing deviation.
    Crystal xtal24("xtal24", 24.0e6, 18.0, Milliwatts::fromWatts(1.8e-3));
    Crystal xtal32("xtal32k", 32768.0, -35.0, Milliwatts::fromWatts(0.3e-3));
    ClockDomain fast_clk("fast", xtal24);
    ClockDomain slow_clk("slow", xtal32);

    std::cout << "Technique 1 walkthrough: timer wake-up handling\n\n";
    std::cout << "Crystals: 24 MHz at +18 ppm ("
              << stats::fmt(xtal24.actualHz(), 0) << " Hz), 32.768 kHz "
              << "at -35 ppm (" << stats::fmt(xtal32.actualHz(), 3)
              << " Hz)\n\n";

    // --- Step calibration (once per reset, Sec. 4.1.3) ---
    StepCalibrator calibrator(xtal24, xtal32);
    const CalibrationResult cal = calibrator.calibrateForPpb();
    std::cout << "1. Step calibration for 1 ppb precision:\n"
              << "   m = " << cal.integerBits << " integer bits, f = "
              << cal.fractionBits << " fraction bits (paper: 10 + 21)\n"
              << "   window: N_slow = 2^" << cal.fractionBits << " = "
              << cal.slowCycles << " slow cycles = "
              << stats::fmtTime(cal.duration) << "\n"
              << "   counted N_fast = " << cal.fastCycles << "\n"
              << "   Step = N_fast / 2^f = "
              << stats::fmt(cal.step.toDouble(), 9)
              << " (nominal ratio: 732.421875)\n\n";

    // --- Timer migration ---
    WakeTimerUnit unit("wake_timer", fast_clk, slow_clk, xtal24,
                       /*pml cycles*/ 16, /*xtal restart*/ 30 * oneUs);
    unit.applyCalibration(cal);

    std::cout << "2. ODRIPS entry: processor timer migrates to the "
                 "chipset.\n";
    const Tick t0 = 100 * oneUs;
    unit.loadFromProcessor(2400000, t0); // 100 us worth of counts... plus
    audit("after PML load (compensated)", unit.valueAt(t0),
          ticksToSeconds(t0) * xtal24.actualHz() + 16.0);

    const Tick migrate_at = 500 * oneUs;
    const HandoverRecord to_slow = unit.switchToSlow(migrate_at);
    std::cout << "   switch requested at "
              << stats::fmtTime(ticksToSeconds(migrate_at))
              << ", slow-clock edge at "
              << stats::fmtTime(ticksToSeconds(to_slow.edge))
              << " (waited "
              << stats::fmtTime(ticksToSeconds(to_slow.latency()))
              << ")\n   24 MHz crystal is now "
              << (xtal24.enabled() ? "ON (?)" : "OFF") << "\n\n";

    // --- Long dwell in slow mode ---
    std::cout << "3. Counting through a 30 s ODRIPS dwell on the 32 kHz "
                 "clock:\n";
    const Tick wake_at = 30 * oneSec;
    audit("mid-dwell (15 s)", unit.valueAt(15 * oneSec),
          15.0 * xtal24.actualHz() + 16.0);

    // --- Handover back ---
    const HandoverRecord to_fast = unit.switchToFast(wake_at);
    std::cout << "\n4. ODRIPS exit: crystal restart ("
              << stats::fmtTime(ticksToSeconds(30 * oneUs))
              << ") + edge wait; fast timer resumes at "
              << stats::fmtTime(ticksToSeconds(to_fast.completed))
              << "\n";
    const Tick read_at = to_fast.completed + oneMs;
    audit("after handover", unit.valueAt(read_at),
          ticksToSeconds(read_at) * xtal24.actualHz() + 16.0);

    const std::uint64_t delivered = unit.deliverToProcessor(read_at);
    std::cout << "   value delivered to the processor (PML-compensated): "
              << delivered << "\n\n";

    const double total_counts = ticksToSeconds(read_at) * 24.0e6;
    std::cout << "Accuracy: a handful of fast cycles of error over "
              << stats::fmt(total_counts / 1e6, 0)
              << "M counts — well inside the 1 ppb budget ("
              << stats::fmt(total_counts * 1e-9, 3)
              << " cycles), at 5 mW lower platform power.\n";
    return 0;
}
