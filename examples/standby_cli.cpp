/**
 * @file
 * Command-line driver for the connected-standby simulator.
 *
 * Examples:
 *   standby_cli --technique=odrips --cycles=10
 *   standby_cli --technique=baseline --dwell=0.5 --active=0.15
 *   standby_cli --technique=odrips --pcm --stats --breakdown
 *   standby_cli --cycles=50 --trace-out=night.trace
 *   standby_cli --trace-in=night.trace --technique=odrips-mram
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "core/odrips.hh"

using namespace odrips;

namespace
{

struct Options
{
    std::string technique = "odrips";
    std::size_t cycles = 5;
    std::optional<double> dwellSeconds;
    std::optional<double> activeSeconds;
    double coreGhz = 0.8;
    bool pcm = false;
    bool stats = false;
    bool breakdown = false;
    bool analyzer = false;
    std::uint64_t seed = 1;
    std::string traceIn;
    std::string traceOut;
};

void
usage()
{
    std::cout <<
        "standby_cli — connected-standby simulation driver\n\n"
        "  --technique=NAME   baseline | wakeup-off | aon-io-gate |\n"
        "                     ctx-sgx-dram | odrips | odrips-mram\n"
        "  --cycles=N         standby cycles to simulate (default 5)\n"
        "  --dwell=SECONDS    fixed idle dwell (default: ~30 s workload)\n"
        "  --active=SECONDS   fixed active window (with --dwell)\n"
        "  --core-ghz=F       core frequency in GHz (default 0.8)\n"
        "  --seed=N           workload seed\n"
        "  --pcm              use PCM main memory (ODRIPS-PCM)\n"
        "  --analyzer         also sample with the 50 us power analyzer\n"
        "  --stats            dump simulator statistics\n"
        "  --breakdown        dump the idle power breakdown and rails\n"
        "  --trace-in=FILE    replay a recorded wake trace\n"
        "  --trace-out=FILE   record the generated wake trace\n";
}

TechniqueSet
techniqueByName(const std::string &name)
{
    if (name == "baseline")
        return TechniqueSet::baseline();
    if (name == "wakeup-off")
        return TechniqueSet::wakeupOffOnly();
    if (name == "aon-io-gate")
        return TechniqueSet::aonIoGated();
    if (name == "ctx-sgx-dram")
        return TechniqueSet::ctxSgxDram();
    if (name == "odrips")
        return TechniqueSet::odrips();
    if (name == "odrips-mram")
        return TechniqueSet::odripsMram();
    fatal("unknown technique '", name, "' (see --help)");
}

bool
parseOption(Options &opt, const std::string &arg)
{
    auto value = [&](const char *prefix) -> std::optional<std::string> {
        const std::size_t n = std::strlen(prefix);
        if (arg.rfind(prefix, 0) == 0)
            return arg.substr(n);
        return std::nullopt;
    };

    if (arg == "--help" || arg == "-h") {
        usage();
        std::exit(0);
    }
    if (auto v = value("--technique=")) { opt.technique = *v; return true; }
    if (auto v = value("--cycles=")) { opt.cycles = std::stoul(*v); return true; }
    if (auto v = value("--dwell=")) { opt.dwellSeconds = std::stod(*v); return true; }
    if (auto v = value("--active=")) { opt.activeSeconds = std::stod(*v); return true; }
    if (auto v = value("--core-ghz=")) { opt.coreGhz = std::stod(*v); return true; }
    if (auto v = value("--seed=")) { opt.seed = std::stoull(*v); return true; }
    if (auto v = value("--trace-in=")) { opt.traceIn = *v; return true; }
    if (auto v = value("--trace-out=")) { opt.traceOut = *v; return true; }
    if (arg == "--pcm") { opt.pcm = true; return true; }
    if (arg == "--stats") { opt.stats = true; return true; }
    if (arg == "--breakdown") { opt.breakdown = true; return true; }
    if (arg == "--analyzer") { opt.analyzer = true; return true; }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    Logger::quiet(true);
    Logger::throwOnError(true);

    try {
        Options opt;
        for (int i = 1; i < argc; ++i) {
            if (!parseOption(opt, argv[i])) {
                std::cerr << "unknown option: " << argv[i] << "\n\n";
                usage();
                return 1;
            }
        }

        PlatformConfig cfg = skylakeConfig();
        cfg.workload.seed = opt.seed;
        cfg.coreFrequencyHz = opt.coreGhz * 1e9;
        if (opt.pcm)
            cfg.memoryKind = MainMemoryKind::Pcm;

        const TechniqueSet tech = techniqueByName(opt.technique);

        // Build or load the trace.
        StandbyTrace trace;
        if (!opt.traceIn.empty()) {
            std::ifstream in(opt.traceIn);
            if (!in)
                fatal("cannot open trace file '", opt.traceIn, "'");
            std::ostringstream text;
            text << in.rdbuf();
            trace = StandbyTrace::parse(text.str());
        } else if (opt.dwellSeconds) {
            trace = StandbyWorkloadGenerator::fixed(
                opt.cycles, secondsToTicks(*opt.dwellSeconds),
                secondsToTicks(opt.activeSeconds.value_or(0.150)), 0.7,
                0.8e9);
        } else {
            StandbyWorkloadGenerator gen(cfg.workload);
            trace = gen.generate(opt.cycles);
        }
        if (!opt.traceOut.empty()) {
            std::ofstream out(opt.traceOut);
            if (!out)
                fatal("cannot open output trace '", opt.traceOut, "'");
            out << trace.serialize();
            std::cout << "recorded " << trace.cycles.size()
                      << " cycles to " << opt.traceOut << '\n';
        }

        Platform platform(cfg);
        StandbySimulator sim(platform, tech);
        const StandbyResult r = sim.run(trace, opt.analyzer);

        stats::Table table(tech.label() + (opt.pcm ? " (PCM)" : "") +
                           " on " + std::to_string(trace.cycles.size()) +
                           " cycles");
        table.setHeader({"metric", "value"});
        table.addRow({"average platform power",
                      stats::fmtPower(r.averageBatteryPower)});
        table.addRow({"idle-state power",
                      stats::fmtPower(r.idleBatteryPower)});
        table.addRow({"active-state power",
                      stats::fmtPower(r.activeBatteryPower)});
        table.addRow({"idle residency",
                      stats::fmtPercent(r.idleResidency)});
        table.addRow({"entry / exit latency",
                      stats::fmtTime(ticksToSeconds(r.meanEntryLatency)) +
                          " / " +
                          stats::fmtTime(
                              ticksToSeconds(r.meanExitLatency))});
        table.addRow({"context intact",
                      r.contextIntact ? "yes" : "NO"});
        if (opt.analyzer) {
            table.addRow({"sampled average (50 us SMU)",
                          stats::fmtPower(r.analyzerAverage)});
        }
        table.print(std::cout);

        if (opt.stats) {
            std::cout << '\n';
            stats::dumpStats(std::cout, sim.statistics());
        }

        if (opt.breakdown) {
            StandbyFlows flows(platform, tech);
            flows.enterIdle();
            std::cout << '\n';
            snapshotBreakdown(platform.pm, platform.pd)
                .toTable("idle power breakdown")
                .print(std::cout);
            std::cout << '\n';
            platform.rails.toTable("voltage rails (idle)")
                .print(std::cout);
        }
        return 0;
    } catch (const SimError &e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
