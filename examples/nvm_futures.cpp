/**
 * @file
 * Exploration of the paper's future-work direction (Sec. 8.3 / Sec. 10):
 * non-volatile memories for the idle state.
 *
 *  - How optimistic does eMRAM have to be? Sweeps the write-cost
 *    pessimism knob and finds where ODRIPS-MRAM stops paying off.
 *  - Does PCM endurance survive connected standby? Projects write wear
 *    on the context region over years of 30-second standby cycles.
 */

#include <iostream>

#include "core/odrips.hh"

using namespace odrips;

int
main()
{
    Logger::quiet(true);

    const PlatformConfig base_cfg = skylakeConfig();
    const CyclePowerProfile baseline =
        measureCycleProfile(base_cfg, TechniqueSet::baseline());
    const CyclePowerProfile odrips =
        measureCycleProfile(base_cfg, TechniqueSet::odrips());

    // --- eMRAM pessimism sweep ---
    std::cout << "eMRAM optimism sweep (paper assumes pessimism = 1.0, "
                 "i.e. SRAM-class writes):\n\n";
    stats::Table table("ODRIPS-MRAM vs write-cost pessimism");
    table.setHeader({"pessimism", "ctx save", "avg power",
                     "vs ODRIPS(DRAM)", "break-even"});
    for (double pessimism : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
        PlatformConfig cfg = base_cfg;
        cfg.emramPessimism = pessimism;
        const CyclePowerProfile p =
            measureCycleProfile(cfg, TechniqueSet::odripsMram());
        const double avg = standardWorkloadAverage(p, cfg);
        const double odrips_avg =
            standardWorkloadAverage(odrips, base_cfg);
        const BreakevenResult be = findBreakeven(p, baseline);
        table.addRow(
            {stats::fmt(pessimism, 0) + "x",
             stats::fmtTime(ticksToSeconds(p.contextSaveLatency)),
             stats::fmtPower(avg),
             stats::fmtPercent(avg / odrips_avg - 1.0),
             be.found() ? stats::fmtTime(ticksToSeconds(be.breakEvenDwell))
                        : "never"});
    }
    table.print(std::cout);

    // --- PCM endurance projection ---
    std::cout << "\nPCM endurance on the context region (one full "
                 "context write per standby cycle):\n\n";
    PlatformConfig pcm_cfg = base_cfg;
    pcm_cfg.memoryKind = MainMemoryKind::Pcm;

    Platform platform(pcm_cfg);
    StandbySimulator sim(platform, TechniqueSet::odripsPcm());
    const StandbyTrace trace = StandbyWorkloadGenerator::fixed(
        12, 20 * oneMs, 20 * oneMs, 0.7, 0.8e9);
    sim.run(trace);

    auto *pcm = dynamic_cast<Pcm *>(platform.memory.get());
    const double writes_per_cycle =
        static_cast<double>(pcm->maxLineWrites()) / 12.0;
    const double cycles_per_day = 86400.0 / 30.2;
    const double writes_per_day = writes_per_cycle * cycles_per_day;
    const double years_to_wearout =
        static_cast<double>(pcm->config().enduranceWrites) /
        writes_per_day / 365.0;

    stats::Table wear("context-region wear projection");
    wear.setHeader({"quantity", "value"});
    wear.addRow({"hottest-line writes per standby cycle",
                 stats::fmt(writes_per_cycle, 1)});
    wear.addRow({"standby cycles per day (30 s dwell)",
                 stats::fmt(cycles_per_day, 0)});
    wear.addRow({"rated endurance (writes/cell)",
                 std::to_string(pcm->config().enduranceWrites)});
    wear.addRow({"years to context-region wear-out",
                 stats::fmt(years_to_wearout, 0) + " years"});
    wear.print(std::cout);

    std::cout << "\nConclusion: a 1e8-write PCM outlives the device by "
                 "orders of magnitude on\nthis access pattern, and "
                 "wear-leveling across the 64 MB SGX region would\n"
                 "stretch it further — endurance does not block "
                 "ODRIPS-PCM.\n";
    return 0;
}
