/**
 * @file
 * Quickstart: build the Skylake platform, run a short connected-standby
 * workload under baseline DRIPS and under ODRIPS, and print the average
 * power and savings.
 */

#include <iostream>

#include "core/odrips.hh"

using namespace odrips;

int
main()
{
    Logger::quiet(true);

    PlatformConfig cfg = skylakeConfig();

    // A short workload: 6 standby cycles of ~30 s idle each.
    StandbyWorkloadGenerator generator(cfg.workload);
    const StandbyTrace trace = generator.generate(6);

    std::cout << "ODRIPS quickstart: " << trace.cycles.size()
              << " standby cycles, mean idle dwell "
              << stats::fmtTime(trace.meanIdleSeconds()) << "\n\n";

    double baseline_power = 0.0;
    for (const TechniqueSet &tech :
         {TechniqueSet::baseline(), TechniqueSet::odrips()}) {
        Platform platform(cfg);
        StandbySimulator sim(platform, tech);
        const StandbyResult result = sim.run(trace);

        std::cout << tech.label() << ":\n";
        std::cout << "  average platform power : "
                  << stats::fmtPower(result.averageBatteryPower) << '\n';
        std::cout << "  idle-state power       : "
                  << stats::fmtPower(result.idleBatteryPower) << '\n';
        std::cout << "  active-state power     : "
                  << stats::fmtPower(result.activeBatteryPower) << '\n';
        std::cout << "  idle residency         : "
                  << stats::fmtPercent(result.idleResidency) << '\n';
        std::cout << "  entry / exit latency   : "
                  << stats::fmtTime(ticksToSeconds(result.meanEntryLatency))
                  << " / "
                  << stats::fmtTime(ticksToSeconds(result.meanExitLatency))
                  << '\n';
        std::cout << "  context intact         : "
                  << (result.contextIntact ? "yes" : "NO") << '\n';
        if (result.lastCycle.contextSave) {
            std::cout << "  context save / restore : "
                      << stats::fmtTime(ticksToSeconds(
                             result.lastCycle.contextSave->latency))
                      << " / "
                      << stats::fmtTime(ticksToSeconds(
                             result.lastCycle.contextRestore->latency))
                      << '\n';
        }

        if (tech.any() && baseline_power > 0.0) {
            std::cout << "  savings vs baseline    : "
                      << stats::fmtPercent(
                             1.0 - result.averageBatteryPower /
                                       baseline_power)
                      << '\n';
        } else {
            baseline_power = result.averageBatteryPower;
        }
        std::cout << '\n';
    }
    return 0;
}
